#include "core/category_partition.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dsig {

bool DistanceRange::PartiallyIntersects(const DistanceRange& other) const {
  // Disjoint ranges do not partially intersect.
  if (ub <= other.lb || other.ub <= lb) return false;
  // Full containment of *this* within `other` is not partial either: the
  // retrieval loop may stop because every refinement stays inside ∆.
  if (lb >= other.lb && ub <= other.ub) return false;
  return true;
}

CategoryPartition::CategoryPartition(std::vector<Weight> boundaries, double t,
                                     double c)
    : boundaries_(std::move(boundaries)), t_(t), c_(c) {}

CategoryPartition CategoryPartition::Exponential(double t, double c,
                                                 Weight max_distance) {
  DSIG_CHECK_GT(t, 0);
  DSIG_CHECK_GT(c, 1);
  DSIG_CHECK_GE(max_distance, t);
  std::vector<Weight> boundaries;
  double bound = t;
  while (bound < max_distance) {
    boundaries.push_back(bound);
    bound *= c;
  }
  // The open-ended tail [last boundary, ∞) absorbs the farthest distances,
  // as in the paper's "beyond 900 meters" example category.
  if (boundaries.empty()) boundaries.push_back(t);
  return CategoryPartition(std::move(boundaries), t, c);
}

CategoryPartition CategoryPartition::Optimal(Weight sp, Weight max_distance) {
  DSIG_CHECK_GT(sp, 0);
  const double c = std::exp(1.0);
  const double t = std::max(1.0, std::sqrt(sp / c));
  return Exponential(t, c, std::max<Weight>(max_distance, t));
}

CategoryPartition CategoryPartition::FromBoundaries(
    std::vector<Weight> boundaries) {
  DSIG_CHECK(!boundaries.empty());
  for (size_t i = 0; i < boundaries.size(); ++i) {
    DSIG_CHECK_GT(boundaries[i], 0);
    if (i > 0) DSIG_CHECK_GT(boundaries[i], boundaries[i - 1]);
    DSIG_CHECK_LT(boundaries[i], kInfiniteWeight);
  }
  return CategoryPartition(std::move(boundaries), 0, 0);
}

CategoryPartition CategoryPartition::Restore(std::vector<Weight> boundaries,
                                             double t, double c) {
  DSIG_CHECK(!boundaries.empty());
  return CategoryPartition(std::move(boundaries), t, c);
}

int CategoryPartition::CategoryOf(Weight d) const {
  DSIG_CHECK_GE(d, 0);
  // First boundary strictly greater than d gives the category.
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), d);
  return static_cast<int>(it - boundaries_.begin());
}

Weight CategoryPartition::LowerBound(int category) const {
  DSIG_CHECK_GE(category, 0);
  DSIG_CHECK_LT(category, num_categories());
  return category == 0 ? 0 : boundaries_[static_cast<size_t>(category) - 1];
}

Weight CategoryPartition::UpperBound(int category) const {
  DSIG_CHECK_GE(category, 0);
  DSIG_CHECK_LT(category, num_categories());
  return category + 1 == num_categories()
             ? kInfiniteWeight
             : boundaries_[static_cast<size_t>(category)];
}

int CategoryPartition::fixed_code_bits() const {
  int bits = 1;
  while ((1 << bits) < num_categories()) ++bits;
  return bits;
}

}  // namespace dsig
