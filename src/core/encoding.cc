#include "core/encoding.h"

#include "util/logging.h"

namespace dsig {

const char* CategoryCodeKindName(CategoryCodeKind kind) {
  switch (kind) {
    case CategoryCodeKind::kFixed:
      return "fixed";
    case CategoryCodeKind::kReverseZeroPadding:
      return "reverse-zero-padding";
    case CategoryCodeKind::kHuffman:
      return "huffman";
  }
  return "unknown";
}

HuffmanCode BuildCategoryCode(CategoryCodeKind kind, int num_categories,
                              const std::vector<uint64_t>& frequencies) {
  switch (kind) {
    case CategoryCodeKind::kFixed:
      return HuffmanCode::FixedLength(num_categories);
    case CategoryCodeKind::kReverseZeroPadding:
      return HuffmanCode::ReverseZeroPadding(num_categories);
    case CategoryCodeKind::kHuffman: {
      DSIG_CHECK_EQ(frequencies.size(), static_cast<size_t>(num_categories));
      return HuffmanCode::FromFrequencies(frequencies);
    }
  }
  DSIG_LOG(Fatal) << "unreachable";
  return HuffmanCode::FixedLength(num_categories);
}

void AccumulateCategoryFrequencies(const SignatureRow& row,
                                   std::vector<uint64_t>* frequencies) {
  for (const SignatureEntry& entry : row) {
    if (entry.compressed) continue;
    DSIG_CHECK_LT(entry.category, frequencies->size());
    ++(*frequencies)[entry.category];
  }
}

}  // namespace dsig
