// Incremental signature maintenance under network updates (paper §5.4).
//
// The updater owns the mutation protocol: it applies the edge change to the
// RoadNetwork, lets the retained spanning forest repair itself (decrease ->
// label-correcting relaxation; increase/removal -> reverse-indexed subtree
// rebuild), refreshes affected object-object table entries, and finally
// rewrites only the signature rows whose category or backtracking link
// actually changed — the locality the paper's update argument rests on.
#ifndef DSIG_CORE_UPDATE_H_
#define DSIG_CORE_UPDATE_H_

#include <cstdint>

#include "core/signature_index.h"
#include "core/update_log.h"

namespace dsig {

struct UpdateStats {
  size_t tree_entries_changed = 0;   // (object, node) pairs re-labelled
  size_t rows_rewritten = 0;         // signature rows re-encoded
  size_t entries_changed = 0;        // components whose category/link moved
};

// Concurrency: each mutation runs inside an exclusive UpdateGuard on the
// index's EpochGate, so it is safe to call while query threads are serving
// (they hold ReadSnapshots) — but the updater itself is single-writer: do
// not call two mutations concurrently. Durability is layered on top by
// io/durable_index.h, which logs each mutation to a WAL before invoking it
// here.
class SignatureUpdater {
 public:
  // `graph` must be the same network the index was built on, and the index
  // must have been built with keep_forest = true.
  SignatureUpdater(RoadNetwork* graph, SignatureIndex* index);

  // Inserts a new road segment; returns its id via `edge_out` if non-null.
  UpdateStats AddEdge(NodeId u, NodeId v, Weight weight,
                      EdgeId* edge_out = nullptr);

  UpdateStats RemoveEdge(EdgeId edge);

  UpdateStats SetEdgeWeight(EdgeId edge, Weight weight);

  // Applies one logged mutation through the paths above — the recovery
  // replay and the chaos driver speak UpdateRecord. The record must already
  // be validated (UpdateRecord::Validate / ApplyTo's range checks).
  UpdateStats Apply(const UpdateRecord& record);

 private:
  UpdateStats ApplyTreeChanges(const std::vector<TreeChange>& changes);

  RoadNetwork* graph_;
  SignatureIndex* index_;
};

}  // namespace dsig

#endif  // DSIG_CORE_UPDATE_H_
