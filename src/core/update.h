// Incremental signature maintenance under network updates (paper §5.4).
//
// The updater owns the mutation protocol: it applies the edge change to the
// RoadNetwork, lets the retained spanning forest repair itself (decrease ->
// label-correcting relaxation; increase/removal -> reverse-indexed subtree
// rebuild), refreshes affected object-object table entries, and finally
// rewrites only the signature rows whose category or backtracking link
// actually changed — the locality the paper's update argument rests on.
#ifndef DSIG_CORE_UPDATE_H_
#define DSIG_CORE_UPDATE_H_

#include <cstdint>

#include "core/signature_index.h"

namespace dsig {

struct UpdateStats {
  size_t tree_entries_changed = 0;   // (object, node) pairs re-labelled
  size_t rows_rewritten = 0;         // signature rows re-encoded
  size_t entries_changed = 0;        // components whose category/link moved
};

class SignatureUpdater {
 public:
  // `graph` must be the same network the index was built on, and the index
  // must have been built with keep_forest = true.
  SignatureUpdater(RoadNetwork* graph, SignatureIndex* index);

  // Inserts a new road segment; returns its id via `edge_out` if non-null.
  UpdateStats AddEdge(NodeId u, NodeId v, Weight weight,
                      EdgeId* edge_out = nullptr);

  UpdateStats RemoveEdge(EdgeId edge);

  UpdateStats SetEdgeWeight(EdgeId edge, Weight weight);

 private:
  UpdateStats ApplyTreeChanges(const std::vector<TreeChange>& changes);

  RoadNetwork* graph_;
  SignatureIndex* index_;
};

}  // namespace dsig

#endif  // DSIG_CORE_UPDATE_H_
