// Epoch-versioned copy-on-write storage for encoded signature rows.
//
// Each node's row is the head of a short singly-linked version chain, newest
// first; a version is stamped with the epoch it became visible at. Readers
// (holding an epoch pin from core/epoch.h) walk the chain from an
// acquire-loaded head to the newest version at or below their pinned epoch,
// so an update that rewrites many rows becomes visible to each query either
// entirely (the query pinned the post-bump epoch) or not at all. The single
// writer publishes under the exclusive gate with release stores and retires
// displaced heads onto a FIFO list; Reclaim() frees retired versions once no
// pinned epoch can still reach them.
//
// The chain is almost always length 1: retired versions only accumulate
// between an update and the next Reclaim, and the paper's locality argument
// (§5.4) keeps the number of rewritten rows per update small.
#ifndef DSIG_CORE_VERSIONED_ROWS_H_
#define DSIG_CORE_VERSIONED_ROWS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/signature.h"
#include "graph/road_network.h"

namespace dsig {

class VersionedRowStore {
 public:
  VersionedRowStore() = default;
  // Seeds every node with its built row at epoch 0 (visible to any reader).
  explicit VersionedRowStore(std::vector<EncodedRow> rows);
  ~VersionedRowStore();

  VersionedRowStore(const VersionedRowStore&) = delete;
  VersionedRowStore& operator=(const VersionedRowStore&) = delete;
  VersionedRowStore(VersionedRowStore&& other) noexcept;
  VersionedRowStore& operator=(VersionedRowStore&& other) noexcept;

  size_t size() const { return heads_.size(); }

  // Newest version visible at `epoch`. The returned reference stays valid as
  // long as the caller's epoch pin is held (Reclaim never frees a version a
  // pinned epoch can reach).
  const EncodedRow& Read(NodeId n, uint64_t epoch) const;

  // Newest version regardless of epoch — for the writer and for quiesced
  // single-threaded paths (persistence, stats).
  const EncodedRow& ReadNewest(NodeId n) const;

  // In-place mutable access to the newest version. Exclusive-use seam for
  // corruption tests; concurrent readers of the same node see the mutation
  // (that is the point of the seam — it models in-memory bit rot).
  EncodedRow& MutableNewest(NodeId n);

  // Writer only (exclusive gate): makes `row` node `n`'s newest version,
  // visible to readers pinned at `epoch` or later; the displaced head is
  // retired at `epoch`.
  void Publish(NodeId n, EncodedRow row, uint64_t epoch);

  // Frees every retired version whose retirement epoch is <= min_pinned
  // (EpochGate::MinPinnedEpoch()). Must not run concurrently with Publish;
  // the update protocol calls it at the start of each exclusive section.
  // Returns the number of bytes freed.
  uint64_t Reclaim(uint64_t min_pinned);

  // Bytes held by retired-but-not-yet-freed versions (the update.retired_
  // bytes gauge).
  uint64_t retired_bytes() const {
    return retired_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Version {
    uint64_t epoch;
    EncodedRow row;
    std::atomic<Version*> prev{nullptr};  // next-older version
  };

  struct Retired {
    Version* version;
    Version* successor;     // the version whose prev points at `version`
    uint64_t retire_epoch;  // epoch of `successor`
  };

  static uint64_t VersionBytes(const Version& v) {
    return sizeof(Version) + v.row.bytes.capacity() +
           v.row.checkpoints.capacity() * sizeof(uint32_t);
  }

  void FreeAll();

  std::vector<std::atomic<Version*>> heads_;
  std::mutex retired_mu_;
  std::deque<Retired> retired_;  // FIFO by retire_epoch
  std::atomic<uint64_t> retired_bytes_{0};
};

}  // namespace dsig

#endif  // DSIG_CORE_VERSIONED_ROWS_H_
