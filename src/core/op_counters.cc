#include "core/op_counters.h"

namespace dsig {
namespace {

OpCounters g_counters;

}  // namespace

OpCounters& GlobalOpCounters() { return g_counters; }

void ResetOpCounters() { g_counters = OpCounters{}; }

}  // namespace dsig
