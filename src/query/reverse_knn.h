// Reverse kNN query (paper §4.3's generalization claim, exercised).
//
// RkNN(q, k) returns the objects that would count q among their k nearest
// objects — "which restaurants would consider this junction one of their k
// closest competitors' sites". The signature machinery answers it without
// any new structure: object o is a result iff d(o, q) is no larger than
// o's k-th nearest *object* distance, and the latter comes straight from
// the in-memory object-object table (with the far-marker giving an upper
// bound when the k-th neighbour fell in the last category). d(o, q) itself
// is refined by guided backtracking only when the category bounds cannot
// decide.
#ifndef DSIG_QUERY_REVERSE_KNN_H_
#define DSIG_QUERY_REVERSE_KNN_H_

#include <cstdint>
#include <vector>

#include "core/signature_index.h"

namespace dsig {

struct ReverseKnnResult {
  // Object indexes with q among their k nearest objects, ascending.
  std::vector<uint32_t> objects;
  // Objects whose decision needed exact backtracking.
  size_t refined = 0;
};

// k >= 1. An object co-located with q is always a result (distance 0).
// Ties are inclusive: d(o, q) equal to the k-th neighbour distance counts.
ReverseKnnResult SignatureReverseKnn(const SignatureIndex& index, NodeId q,
                                     size_t k);

}  // namespace dsig

#endif  // DSIG_QUERY_REVERSE_KNN_H_
