#include "query/closest_pair.h"

#include "core/distance_ops.h"
#include "obs/trace.h"

namespace dsig {

ClosestPairResult SignatureClosestPair(const SignatureIndex& left,
                                       const SignatureIndex& right) {
  DSIG_QUERY_TRACE("closest_pair");
  const ReadSnapshot left_snapshot(left.epoch_gate());
  const ReadSnapshot right_snapshot(right.epoch_gate());
  DSIG_CHECK_EQ(&left.graph(), &right.graph())
      << "closest pair requires indexes over the same network";
  DSIG_CHECK_GT(left.num_objects(), 0u);
  DSIG_CHECK_GT(right.num_objects(), 0u);
  ClosestPairResult best;

  const CategoryPartition& partition = right.partition();
  for (uint32_t a = 0; a < left.num_objects(); ++a) {
    const NodeId node_a = left.object_node(a);
    // The right index's signature at a's node is the category view of
    // d(a, b) for every b.
    const SignatureRow row = right.ReadRow(node_a);
    for (uint32_t b = 0; b < row.size(); ++b) {
      if (right.object_node(b) == node_a) {
        // Co-located: nothing can beat 0.
        return {a, b, 0, best.refined};
      }
      const DistanceRange range = partition.RangeOf(row[b].category);
      if (range.lb >= best.distance) continue;  // cannot win
      ++best.refined;
      RetrievalCursor cursor(&right, node_a, b, &row[b]);
      // Refine only until the pair provably loses to the incumbent.
      while (!cursor.exact() && cursor.range().lb < best.distance) {
        cursor.Step();
      }
      if (cursor.exact() && cursor.exact_distance() < best.distance) {
        best.left = a;
        best.right = b;
        best.distance = cursor.exact_distance();
      }
    }
  }
  return best;
}

}  // namespace dsig
