#include "query/closest_pair.h"

#include "core/distance_ops.h"
#include "core/row_stage.h"
#include "obs/op_counters.h"
#include "obs/trace.h"
#include "query/planner.h"
#include "util/simd/simd.h"

namespace dsig {

ClosestPairResult SignatureClosestPair(const SignatureIndex& left,
                                       const SignatureIndex& right) {
  DSIG_QUERY_TRACE("closest_pair");
  const ReadSnapshot left_snapshot(left.epoch_gate());
  const ReadSnapshot right_snapshot(right.epoch_gate());
  DSIG_CHECK_EQ(&left.graph(), &right.graph())
      << "closest pair requires indexes over the same network";
  DSIG_CHECK_GT(left.num_objects(), 0u);
  DSIG_CHECK_GT(right.num_objects(), 0u);
  ClosestPairResult best;

  const CategoryPartition& partition = right.partition();
  const int m = partition.num_categories();
  const simd::KernelTable& kernels = simd::Kernels();
  static thread_local RowStage stage;
  for (uint32_t a = 0; a < left.num_objects(); ++a) {
    const NodeId node_a = left.object_node(a);
    // The right index's signature at a's node is the category view of
    // d(a, b) for every b.
    right.ReadRowStaged(node_a, &stage);
    const size_t num_b = stage.size();
    const uint8_t* cats = stage.categories();

    if (best.distance <= 0) {
      // Only a co-located pair can still match a zero incumbent, and there
      // is at most one: the right object on a's node.
      const ObjectId co = right.object_at(node_a);
      if (co != kInvalidObject) return {a, co, 0, best.refined};
      continue;
    }

    // Contender band: category ranges ascend, so the categories whose lower
    // bound can still beat the incumbent form the prefix below `limit`. A
    // co-located b (distance 0, category 0) always lands in the band while
    // the incumbent distance is positive.
    int limit = 0;
    while (limit < m && partition.RangeOf(limit).lb < best.distance) ++limit;
    // Whole-row skip when even the row's closest category cannot win.
    if (kernels.min_u8(cats, num_b) >= limit) continue;

    uint32_t* const band = stage.index_scratch();
    const size_t band_count =
        kernels.extract_in_range(cats, num_b, 0, limit, band);
    for (size_t j = 0; j < band_count; ++j) {
      const uint32_t b = band[j];
      if (right.object_node(b) == node_a) {
        // Co-located: nothing can beat 0.
        return {a, b, 0, best.refined};
      }
      const DistanceRange range = partition.RangeOf(cats[b]);
      // Re-check against the live incumbent: `limit` was computed at row
      // start and the incumbent may have tightened since.
      if (range.lb >= best.distance) continue;  // cannot win
      ++best.refined;
      if (PlanObjectRoute(right, &range) == ExactRoute::kLabels) {
        // Label route: the exact value in one merge. The incumbent check is
        // the same (exact d vs best), so the winner sequence — and thus the
        // final pair — matches the chase route bit for bit.
        ++GlobalOpCounters().label_distances;
        const Weight d =
            right.hub_labels()->Distance(node_a, right.object_node(b));
        if (d < best.distance) {
          best.left = a;
          best.right = b;
          best.distance = d;
        }
        continue;
      }
      const SignatureEntry initial = stage.entry(b);
      RetrievalCursor cursor(&right, node_a, b, &initial);
      // Refine only until the pair provably loses to the incumbent.
      while (!cursor.exact() && cursor.range().lb < best.distance) {
        cursor.Step();
      }
      if (cursor.exact() && cursor.exact_distance() < best.distance) {
        best.left = a;
        best.right = b;
        best.distance = cursor.exact_distance();
      }
    }
  }
  return best;
}

}  // namespace dsig
