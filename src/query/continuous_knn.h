// Continuous kNN along a path (paper §2's CNN query, served by the
// general-purpose signature index).
//
// Given a path through the network, a CNN query returns the kNN result for
// every position along it, as a list of (segment, result) validity
// intervals: "the kNNs and the valid scopes of the results along a path".
// Specialized structures (UBA, UNICONS) exist for this; the paper's thesis
// is that a general distance index serves such queries too. We evaluate a
// distance-ordered kNN at each path node and merge consecutive nodes whose
// result sets agree — category pruning makes the per-node evaluations cheap,
// and the signature rows of consecutive path nodes usually land on the same
// pages (CCAM layout).
#ifndef DSIG_QUERY_CONTINUOUS_KNN_H_
#define DSIG_QUERY_CONTINUOUS_KNN_H_

#include <cstdint>
#include <vector>

#include "core/signature_index.h"

namespace dsig {

struct CnnInterval {
  // The result is valid for path positions [first_index, last_index]
  // (indexes into the query path's node sequence).
  size_t first_index = 0;
  size_t last_index = 0;
  // The k nearest objects valid throughout the interval (membership set;
  // per-position ordering is available from a type-2 kNN at any position).
  std::vector<uint32_t> objects;
};

struct CnnResult {
  std::vector<CnnInterval> intervals;
  size_t knn_evaluations = 0;  // how many per-node kNN runs were needed
};

// `path` must be a walk in the graph (consecutive nodes adjacent); k >= 1.
// Split positions are reported at node granularity, matching the paper's
// node-resident object model.
CnnResult SignatureContinuousKnn(const SignatureIndex& index,
                                 const std::vector<NodeId>& path, size_t k);

}  // namespace dsig

#endif  // DSIG_QUERY_CONTINUOUS_KNN_H_
