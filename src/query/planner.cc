#include "query/planner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "core/hub_labels.h"
#include "core/row_stage.h"
#include "graph/dijkstra.h"
#include "obs/op_counters.h"
#include "obs/trace.h"
#include "util/deadline.h"

namespace dsig {
namespace {

std::atomic<int> g_no_labels_override{0};

// DSIG_FORCE_NO_LABELS, read once like the dispatcher's DSIG_FORCE_SCALAR:
// set/non-empty/non-"0" pins every planner decision off the label tier for
// the process lifetime.
bool ForceNoLabelsEnv() {
  static const bool forced = [] {
    const char* v = std::getenv("DSIG_FORCE_NO_LABELS");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return forced;
}

// Demotion accounting: a request was label-eligible (a tier is attached)
// but the planner sent it elsewhere — stale latch, force-off pin, decode
// failure, or the cost model preferring the hop count.
void CountDemotion(const SignatureIndex& index) {
  if (index.hub_labels() != nullptr) ++GlobalOpCounters().label_demotions;
}

}  // namespace

bool LabelsUsable(const SignatureIndex& index) {
  if (ForceNoLabelsEnv()) return false;
  if (g_no_labels_override.load(std::memory_order_relaxed) > 0) return false;
  const HubLabels* labels = index.hub_labels();
  if (labels == nullptr || labels->stale()) return false;
  // Last: ready() triggers the lazy blob decode, which the pins above must
  // be able to avoid entirely.
  return labels->ready();
}

ExactRouteCostModel PlannerSeed(const SignatureIndex& index) {
  ExactRouteCostModel model;
  const HubLabels* labels = index.hub_labels();
  if (labels != nullptr && labels->ready()) {
    model.avg_label_entries = labels->stats().avg_label_entries;
    model.mean_edge_weight = labels->mean_edge_weight();
  }
  return model;
}

ExactRoute PlanObjectRoute(const SignatureIndex& index,
                           const DistanceRange* hint) {
  if (!LabelsUsable(index)) return ExactRoute::kChase;
  // No category hint means the caller has not read the row; the label route
  // answers without ever touching it, so it wins outright.
  if (hint == nullptr) return ExactRoute::kLabels;
  const ExactRouteCostModel model = PlannerSeed(index);
  // The category lower bound is the conservative distance estimate: every
  // chase toward this object walks at least lb worth of edges (ub may be
  // infinite in the open tail category, so it cannot anchor a cost).
  const double expected = static_cast<double>(hint->lb);
  return model.ChaseCost(expected) >= model.LabelCost() ? ExactRoute::kLabels
                                                        : ExactRoute::kChase;
}

Weight RoutedObjectDistance(const SignatureIndex& index, NodeId n,
                            uint32_t object, const SignatureEntry* initial) {
  const ReadSnapshot snapshot(index.epoch_gate());
  DistanceRange hint;
  const DistanceRange* hint_ptr = nullptr;
  if (initial != nullptr && initial->IsResolved()) {
    hint = index.partition().RangeOf(initial->category);
    hint_ptr = &hint;
  }
  const ExactRoute route = PlanObjectRoute(index, hint_ptr);
  if (route == ExactRoute::kLabels) {
    ++GlobalOpCounters().label_distances;
    return index.hub_labels()->Distance(n, index.object_node(object));
  }
  CountDemotion(index);
  RetrievalCursor cursor(&index, n, object, initial);
  return cursor.RetrieveExact();
}

Weight RoutedNodeDistance(const SignatureIndex& index, NodeId u, NodeId v) {
  if (LabelsUsable(index)) {
    ++GlobalOpCounters().label_distances;
    return index.hub_labels()->Distance(u, v);
  }
  CountDemotion(index);
  const obs::Span span(obs::Phase::kDijkstraFallback);
  return DijkstraDistance(index.graph(), u, v);
}

void RoutedSortByDistance(const SignatureIndex& index, NodeId n,
                          const RowStage& stage,
                          std::vector<uint32_t>* objects) {
  if (!LabelsUsable(index)) {
    CountDemotion(index);
    SortByDistance(index, n, stage, objects);
    return;
  }
  const obs::Span span(obs::Phase::kSort);
  const ReadSnapshot snapshot(index.epoch_gate());
  std::vector<uint32_t>& objs = *objects;
  // Phase 1 is SortByDistance's approximate insertion sort, verbatim — the
  // observer heuristic decides the order of objects the exact refinement
  // later proves tied, so reproducing the final permutation bit for bit
  // requires reproducing this pass bit for bit (same comparator, same
  // deadline cadence).
  for (size_t i = 1; i < objs.size(); ++i) {
    if ((i & 15u) == 0 && DeadlineExpired()) return;
    const uint32_t value = objs[i];
    size_t j = i;
    while (j > 0 && ApproximateCompare(index, n, value, objs[j - 1], stage) ==
                        CompareResult::kLess) {
      objs[j] = objs[j - 1];
      --j;
    }
    objs[j] = value;
  }
  if (DeadlineExpired()) return;
  // Phase 2: Algorithm 4's cursor refinement is a stable sort of that
  // permutation by exact distance (it swaps only strictly-greater adjacent
  // pairs). A stable sort keyed by label distances is therefore the same
  // permutation — at a merge per object instead of a page walk per compare.
  const HubLabels& labels = *index.hub_labels();
  struct Keyed {
    Weight d;
    uint32_t object;
  };
  std::vector<Keyed> keyed(objs.size());
  for (size_t i = 0; i < objs.size(); ++i) {
    keyed[i] = {labels.Distance(n, index.object_node(objs[i])), objs[i]};
  }
  GlobalOpCounters().label_distances += objs.size();
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.d < b.d; });
  for (size_t i = 0; i < objs.size(); ++i) objs[i] = keyed[i].object;
}

NoLabelsOverride::NoLabelsOverride() {
  g_no_labels_override.fetch_add(1, std::memory_order_relaxed);
}

NoLabelsOverride::~NoLabelsOverride() {
  g_no_labels_override.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace dsig
