#include "query/aggregate_query.h"

#include <algorithm>
#include <vector>

#include "core/distance_ops.h"
#include "obs/trace.h"
#include "query/range_query.h"
#include "util/simd/simd.h"

namespace dsig {

CountResult SignatureCountQuery(const SignatureIndex& index, NodeId n,
                                Weight epsilon) {
  DSIG_QUERY_TRACE("count");
  const ReadSnapshot snapshot(index.epoch_gate());
  // COUNT shares the range algorithm; only the result shape differs.
  const RangeQueryResult range = SignatureRangeQuery(index, n, epsilon);
  return {range.objects.size(), range.refined};
}

DistanceAggregateResult SignatureDistanceAggregateQuery(
    const SignatureIndex& index, NodeId n, Weight epsilon) {
  DSIG_QUERY_TRACE("aggregate");
  // Covers both the range scan and the exact-distance refinements, so the
  // aggregate is computed against a single index state.
  const ReadSnapshot snapshot(index.epoch_gate());
  DistanceAggregateResult result;
  const RangeQueryResult range = SignatureRangeQuery(index, n, epsilon);
  // Exact distances are gathered densely, then reduced by the SIMD
  // aggregate kernel. The kernel's blocked summation order is fixed across
  // dispatch levels (util/simd/simd.h), so the sum is deterministic
  // everywhere, scalar build included.
  std::vector<Weight> distances;
  distances.reserve(range.objects.size());
  for (const uint32_t o : range.objects) {
    distances.push_back(ExactDistance(index, n, o));
  }
  if (!distances.empty()) {
    Weight sum = 0, min = 0, max = 0;
    simd::Kernels().aggregate_f64(distances.data(), distances.size(), &sum,
                                  &min, &max);
    result.count = distances.size();
    result.sum = sum;
    result.min = std::min(result.min, min);
    result.max = std::max(result.max, max);
  }
  return result;
}

}  // namespace dsig
