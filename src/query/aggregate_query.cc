#include "query/aggregate_query.h"

#include <algorithm>

#include "core/distance_ops.h"
#include "obs/trace.h"
#include "query/range_query.h"

namespace dsig {

CountResult SignatureCountQuery(const SignatureIndex& index, NodeId n,
                                Weight epsilon) {
  DSIG_QUERY_TRACE("count");
  const ReadSnapshot snapshot(index.epoch_gate());
  // COUNT shares the range algorithm; only the result shape differs.
  const RangeQueryResult range = SignatureRangeQuery(index, n, epsilon);
  return {range.objects.size(), range.refined};
}

DistanceAggregateResult SignatureDistanceAggregateQuery(
    const SignatureIndex& index, NodeId n, Weight epsilon) {
  DSIG_QUERY_TRACE("aggregate");
  // Covers both the range scan and the exact-distance refinements, so the
  // aggregate is computed against a single index state.
  const ReadSnapshot snapshot(index.epoch_gate());
  DistanceAggregateResult result;
  const RangeQueryResult range = SignatureRangeQuery(index, n, epsilon);
  for (const uint32_t o : range.objects) {
    const Weight d = ExactDistance(index, n, o);
    ++result.count;
    result.sum += d;
    result.min = std::min(result.min, d);
    result.max = std::max(result.max, d);
  }
  return result;
}

}  // namespace dsig
