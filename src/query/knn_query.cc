#include "query/knn_query.h"

#include <algorithm>

#include "core/distance_ops.h"
#include "obs/trace.h"
#include "util/deadline.h"

namespace dsig {

KnnResult SignatureKnnQuery(const SignatureIndex& index, NodeId n, size_t k,
                            KnnResultType type) {
  DSIG_QUERY_TRACE("knn");
  // One epoch for the whole query: the row read, every backtracking step and
  // the final sort all see the same published index state.
  const ReadSnapshot snapshot(index.epoch_gate());
  KnnResult result;
  if (k == 0) return result;
  // An already-expired deadline returns before the row read, so a hopeless
  // request never charges the buffer pool.
  if (DeadlineExpired()) {
    result.deadline_exceeded = true;
    return result;
  }
  const SignatureRow row = index.ReadRow(n);
  k = std::min(k, row.size());

  // Bucket objects by category (the rough ordering s(n) gives for free).
  const int m_categories = index.partition().num_categories();
  std::vector<std::vector<uint32_t>> buckets(
      static_cast<size_t>(m_categories));
  for (uint32_t o = 0; o < row.size(); ++o) {
    buckets[row[o].category].push_back(o);
  }

  // Boundary bucket m: categories before it are wholly confirmed results.
  size_t confirmed = 0;
  int m = 0;
  while (confirmed + buckets[m].size() < k) {
    confirmed += buckets[m].size();
    ++m;
  }

  // The boundary bucket must be sorted when it is partially taken (to pick
  // its top) and for type 2 (whose whole result is ordered). If the deadline
  // aborts that sort, taking its head would report objects that are merely
  // *in* the boundary category, not its nearest — so on expiry the boundary
  // bucket only survives when it is taken whole (membership then needs no
  // ranking).
  const size_t take_from_m = k - confirmed;
  const bool m_needs_ranking = take_from_m < buckets[m].size();
  if (m_needs_ranking || type == KnnResultType::kType2) {
    SortByDistance(index, n, row, &buckets[m]);
  }
  buckets[m].resize(take_from_m);

  if (type == KnnResultType::kType2) {
    // Order must be exact everywhere: sort every contributing bucket.
    for (int i = 0; i < m && !DeadlineExpired(); ++i) {
      SortByDistance(index, n, row, &buckets[i]);
    }
  }
  // Phase boundary: sorting may have been cut short. Buckets below the
  // boundary are confirmed members by category pruning alone; the boundary
  // bucket is only trusted when its ranking wasn't needed. The partial is a
  // subset of the exact answer set — smaller, never wrong.
  if (DeadlineExpired()) {
    result.deadline_exceeded = true;
    const int keep = m_needs_ranking ? m : m + 1;
    for (int i = 0; i < keep; ++i) {
      result.objects.insert(result.objects.end(), buckets[i].begin(),
                            buckets[i].end());
    }
    return result;
  }
  for (int i = 0; i <= m; ++i) {
    result.objects.insert(result.objects.end(), buckets[i].begin(),
                          buckets[i].end());
  }

  if (type == KnnResultType::kType1) {
    // Exact distances via guided backtracking, then a final exact sort.
    result.distances.reserve(result.objects.size());
    std::vector<std::pair<Weight, uint32_t>> with_distance;
    with_distance.reserve(result.objects.size());
    for (const uint32_t o : result.objects) {
      // Backtracking is the expensive phase: check before every retrieval
      // and keep whatever distances are already exact.
      if (DeadlineExpired()) {
        result.deadline_exceeded = true;
        break;
      }
      RetrievalCursor cursor(&index, n, o, &row[o]);
      with_distance.push_back({cursor.RetrieveExact(), o});
    }
    {
      const obs::Span sort_span(obs::Phase::kSort);
      std::sort(with_distance.begin(), with_distance.end());
    }
    result.objects.clear();
    for (const auto& [d, o] : with_distance) {
      result.objects.push_back(o);
      result.distances.push_back(d);
    }
  }
  return result;
}

}  // namespace dsig
