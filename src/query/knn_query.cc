#include "query/knn_query.h"

#include <algorithm>

#include "core/distance_ops.h"
#include "core/row_stage.h"
#include "obs/trace.h"
#include "query/planner.h"
#include "util/deadline.h"
#include "util/simd/simd.h"

namespace dsig {

KnnResult SignatureKnnQuery(const SignatureIndex& index, NodeId n, size_t k,
                            KnnResultType type) {
  DSIG_QUERY_TRACE("knn");
  // One epoch for the whole query: the row read, every backtracking step and
  // the final sort all see the same published index state.
  const ReadSnapshot snapshot(index.epoch_gate());
  KnnResult result;
  if (k == 0) return result;
  // An already-expired deadline returns before the row read, so a hopeless
  // request never charges the buffer pool.
  if (DeadlineExpired()) {
    result.deadline_exceeded = true;
    return result;
  }
  static thread_local RowStage stage;
  index.ReadRowStaged(n, &stage);
  const size_t num_objects = stage.size();
  const uint8_t* cats = stage.categories();
  k = std::min(k, num_objects);

  // Bucket sizes by category (the rough ordering s(n) gives for free), one
  // vectorized count per category over the stage's category lane.
  const simd::KernelTable& kernels = simd::Kernels();
  const int m_categories = index.partition().num_categories();
  std::vector<size_t> counts(static_cast<size_t>(m_categories));
  for (int c = 0; c < m_categories; ++c) {
    counts[c] = kernels.count_in_range(cats, num_objects, c, c + 1);
  }

  // Boundary bucket m: categories before it are wholly confirmed results.
  size_t confirmed = 0;
  int m = 0;
  while (confirmed + counts[m] < k) {
    confirmed += counts[m];
    ++m;
  }

  // Materialize only the contributing buckets 0..m (ascending object order,
  // exactly the order a per-object bucketing scan would produce).
  std::vector<std::vector<uint32_t>> buckets(static_cast<size_t>(m) + 1);
  for (int c = 0; c <= m; ++c) {
    buckets[c].resize(counts[c]);
    kernels.extract_in_range(cats, num_objects, c, c + 1, buckets[c].data());
  }

  // The boundary bucket must be sorted when it is partially taken (to pick
  // its top) and for type 2 (whose whole result is ordered). If the deadline
  // aborts that sort, taking its head would report objects that are merely
  // *in* the boundary category, not its nearest — so on expiry the boundary
  // bucket only survives when it is taken whole (membership then needs no
  // ranking).
  const size_t take_from_m = k - confirmed;
  const bool m_needs_ranking = take_from_m < buckets[m].size();
  if (m_needs_ranking || type == KnnResultType::kType2) {
    RoutedSortByDistance(index, n, stage, &buckets[m]);
  }
  buckets[m].resize(take_from_m);

  if (type == KnnResultType::kType2) {
    // Order must be exact everywhere: sort every contributing bucket.
    for (int i = 0; i < m && !DeadlineExpired(); ++i) {
      RoutedSortByDistance(index, n, stage, &buckets[i]);
    }
  }
  // Phase boundary: sorting may have been cut short. Buckets below the
  // boundary are confirmed members by category pruning alone; the boundary
  // bucket is only trusted when its ranking wasn't needed. The partial is a
  // subset of the exact answer set — smaller, never wrong.
  if (DeadlineExpired()) {
    result.deadline_exceeded = true;
    const int keep = m_needs_ranking ? m : m + 1;
    for (int i = 0; i < keep; ++i) {
      result.objects.insert(result.objects.end(), buckets[i].begin(),
                            buckets[i].end());
    }
    return result;
  }
  for (int i = 0; i <= m; ++i) {
    result.objects.insert(result.objects.end(), buckets[i].begin(),
                          buckets[i].end());
  }

  if (type == KnnResultType::kType1) {
    // Exact distances via guided backtracking, then a final exact sort.
    result.distances.reserve(result.objects.size());
    std::vector<std::pair<Weight, uint32_t>> with_distance;
    with_distance.reserve(result.objects.size());
    for (const uint32_t o : result.objects) {
      // Backtracking is the expensive phase: check before every retrieval
      // and keep whatever distances are already exact.
      if (DeadlineExpired()) {
        result.deadline_exceeded = true;
        break;
      }
      const SignatureEntry initial = stage.entry(o);
      with_distance.push_back({RoutedObjectDistance(index, n, o, &initial), o});
    }
    {
      const obs::Span sort_span(obs::Phase::kSort);
      std::sort(with_distance.begin(), with_distance.end());
    }
    result.objects.clear();
    for (const auto& [d, o] : with_distance) {
      result.objects.push_back(o);
      result.distances.push_back(d);
    }
  }
  return result;
}

}  // namespace dsig
