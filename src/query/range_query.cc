#include "query/range_query.h"

#include "core/distance_ops.h"
#include "obs/trace.h"
#include "util/deadline.h"

namespace dsig {

RangeQueryResult SignatureRangeQuery(const SignatureIndex& index, NodeId n,
                                     Weight epsilon) {
  DSIG_QUERY_TRACE("range");
  const ReadSnapshot snapshot(index.epoch_gate());
  DSIG_CHECK_GE(epsilon, 0);
  RangeQueryResult result;
  // An already-expired deadline returns before the row read, so a hopeless
  // request never charges the buffer pool.
  if (DeadlineExpired()) {
    result.deadline_exceeded = true;
    return result;
  }
  const SignatureRow row = index.ReadRow(n);
  const CategoryPartition& partition = index.partition();
  for (uint32_t o = 0; o < row.size(); ++o) {
    // Category confirm/prune is cheap (throttled check); refinement below is
    // where a request can burn its budget, and it re-checks per object.
    if ((o & 15u) == 0 && DeadlineExpired()) {
      result.deadline_exceeded = true;
      return result;
    }
    const DistanceRange range = partition.RangeOf(row[o].category);
    if (range.ub != kInfiniteWeight && range.ub <= epsilon) {
      // Every distance in [lb, ub) is strictly below ub <= epsilon.
      result.objects.push_back(o);
      continue;
    }
    if (range.lb > epsilon) continue;
    // Ambiguous: refine by guided backtracking until the range clears the
    // threshold (or collapses to the exact value).
    ++result.refined;
    RetrievalCursor cursor(&index, n, o, &row[o]);
    while (true) {
      if (cursor.exact()) {
        if (cursor.exact_distance() <= epsilon) result.objects.push_back(o);
        break;
      }
      const DistanceRange r = cursor.range();
      if (r.ub != kInfiniteWeight && r.ub <= epsilon) {
        result.objects.push_back(o);
        break;
      }
      if (r.lb > epsilon) break;
      if (DeadlineExpired()) {
        // Abandon this (still ambiguous) object; everything already pushed
        // is confirmed, so the partial result stays sound.
        result.deadline_exceeded = true;
        return result;
      }
      cursor.Step();
    }
  }
  return result;
}

}  // namespace dsig
