#include "query/range_query.h"

#include <algorithm>

#include "core/distance_ops.h"
#include "core/row_stage.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/simd/simd.h"

namespace dsig {

RangeQueryResult SignatureRangeQuery(const SignatureIndex& index, NodeId n,
                                     Weight epsilon) {
  DSIG_QUERY_TRACE("range");
  const ReadSnapshot snapshot(index.epoch_gate());
  DSIG_CHECK_GE(epsilon, 0);
  RangeQueryResult result;
  // An already-expired deadline returns before the row read, so a hopeless
  // request never charges the buffer pool.
  if (DeadlineExpired()) {
    result.deadline_exceeded = true;
    return result;
  }
  static thread_local RowStage stage;
  index.ReadRowStaged(n, &stage);
  const CategoryPartition& partition = index.partition();
  const size_t num_objects = stage.size();
  const uint8_t* cats = stage.categories();

  // Category ranges ascend, so the per-object confirm/prune decision is
  // monotone in the category id: a prefix [0, accept) of categories is
  // wholly confirmed (ub <= epsilon), a suffix [reject, m) wholly pruned
  // (lb > epsilon), and only the straddling band in between needs
  // refinement. The per-object scan then collapses to two vector
  // extractions over the category lane.
  const int m = partition.num_categories();
  int accept = 0;
  while (accept < m) {
    const DistanceRange r = partition.RangeOf(accept);
    // Every distance in [lb, ub) is strictly below ub <= epsilon.
    if (r.ub == kInfiniteWeight || r.ub > epsilon) break;
    ++accept;
  }
  int reject = accept;
  while (reject < m && partition.RangeOf(reject).lb <= epsilon) ++reject;

  const simd::KernelTable& kernels = simd::Kernels();
  // Confirmed members in one pass, in ascending object order.
  result.objects.resize(num_objects);
  result.objects.resize(kernels.extract_in_range(
      cats, num_objects, 0, accept, result.objects.data()));
  const size_t confirmed = result.objects.size();

  // Straddling band: refine by guided backtracking until the range clears
  // the threshold (or collapses to the exact value). Refinement is where a
  // request burns its budget, so the deadline re-check runs per object
  // (throttled) and per backtracking step.
  uint32_t* const band = stage.index_scratch();
  const size_t band_count =
      kernels.extract_in_range(cats, num_objects, accept, reject, band);
  for (size_t j = 0; j < band_count && !result.deadline_exceeded; ++j) {
    const uint32_t o = band[j];
    if ((j & 15u) == 0 && DeadlineExpired()) {
      result.deadline_exceeded = true;
      break;
    }
    ++result.refined;
    const SignatureEntry initial = stage.entry(o);
    RetrievalCursor cursor(&index, n, o, &initial);
    while (true) {
      if (cursor.exact()) {
        if (cursor.exact_distance() <= epsilon) result.objects.push_back(o);
        break;
      }
      const DistanceRange r = cursor.range();
      if (r.ub != kInfiniteWeight && r.ub <= epsilon) {
        result.objects.push_back(o);
        break;
      }
      if (r.lb > epsilon) break;
      if (DeadlineExpired()) {
        // Abandon this (still ambiguous) object; everything already pushed
        // is confirmed, so the partial result stays sound.
        result.deadline_exceeded = true;
        break;
      }
      cursor.Step();
    }
  }
  // Refined confirms were appended after the vectorized accepts; both runs
  // ascend, so one merge restores global object order.
  std::inplace_merge(result.objects.begin(),
                     result.objects.begin() + confirmed, result.objects.end());
  return result;
}

}  // namespace dsig
