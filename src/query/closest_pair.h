// Closest-pair query between two datasets (paper §4.3's generalization
// claim, exercised).
//
// CP(A, B) returns the (a, b) pair with the smallest network distance —
// "the depot/customer pair that should be matched first". The signature
// gives it an elegant evaluation: the right-hand index's row AT a's node is
// exactly the vector of d(a, ·) category ranges, so scanning |A| rows with
// a best-so-far bound prunes almost all pairs and refines only the
// contenders by guided backtracking.
#ifndef DSIG_QUERY_CLOSEST_PAIR_H_
#define DSIG_QUERY_CLOSEST_PAIR_H_

#include <cstdint>

#include "core/signature_index.h"

namespace dsig {

struct ClosestPairResult {
  uint32_t left = 0;   // object index in the left index
  uint32_t right = 0;  // object index in the right index
  Weight distance = kInfiniteWeight;
  size_t refined = 0;  // pairs that needed backtracking
};

// Both indexes must be built over the same RoadNetwork instance; both must
// be non-empty. Co-located pairs short-circuit at distance 0.
ClosestPairResult SignatureClosestPair(const SignatureIndex& left,
                                       const SignatureIndex& right);

}  // namespace dsig

#endif  // DSIG_QUERY_CLOSEST_PAIR_H_
