// Cost-model routing of exact-distance work (the hybrid-tier planner).
//
// Three machines can produce an exact network distance:
//   * the hub-label tier (core/hub_labels.h): one sorted-array min-plus
//     merge, microseconds, no pages — but immutable, so any applied update
//     trips its sticky stale latch;
//   * guided backtracking over signatures (core/distance_ops.h): one row
//     decode + one adjacency page per hop, incrementally maintained, the
//     previous default;
//   * bounded Dijkstra (graph/dijkstra.h): no index at all, the last-resort
//     fallback it has always been.
//
// The planner picks per request, seeded by core/cost_model's
// ExactRouteCostModel: labels when they are attached, decoded, fresh, and
// the estimated merge cost undercuts the estimated hop count — chasing
// still wins for near objects (a 1-2 hop chase beats merging two hundred
// lanes). Signatures keep doing what they are uniquely good at (categorical
// pruning, observer votes); the label tier takes over the final exact
// values and long sorts.
//
// Identity contract: every generator produces integer edge weights, so the
// label sum d(u,h) + d(h,v) equals the chase's edge-by-edge accumulation
// bit for bit, and the label-routed sort reproduces the signature sort's
// exact permutation (the refinement pass of Algorithm 4 is a stable sort by
// exact distance, which is precisely what the label route runs). Query
// results are therefore identical on every route — enforced by
// tests/planner_test.cc at every SIMD dispatch level.
//
// Overrides: DSIG_FORCE_NO_LABELS=1 (checked once, mirroring
// DSIG_FORCE_SCALAR) pins the signature/Dijkstra paths; NoLabelsOverride is
// the RAII hook for tests and harnesses.
#ifndef DSIG_QUERY_PLANNER_H_
#define DSIG_QUERY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "core/cost_model.h"
#include "core/distance_ops.h"
#include "core/signature_index.h"

namespace dsig {

// Where one exact-distance request was routed.
enum class ExactRoute {
  kLabels,    // hub-label merge
  kChase,     // guided backtracking over signatures
  kDijkstra,  // bounded Dijkstra on the raw graph
};

// True when the hub-label tier may serve `index` right now: labels attached,
// blob decoded, stale latch clear, and no force-off pin.
bool LabelsUsable(const SignatureIndex& index);

// The cost-model seed for `index`'s label tier (meaningful when
// LabelsUsable; zeros otherwise).
ExactRouteCostModel PlannerSeed(const SignatureIndex& index);

// Route decision for one node-to-object distance. `hint` is the node's
// already-read category range toward the object (null when the caller has
// not touched the row — the label route then also saves that read).
ExactRoute PlanObjectRoute(const SignatureIndex& index,
                           const DistanceRange* hint);

// d(n, object), exact, routed. Identical value on every route; charges
// label_distances or backtrack pages according to the route taken.
// `initial` as in RetrievalCursor: the resolved entry s(n)[object] when the
// caller already read the row, else null.
Weight RoutedObjectDistance(const SignatureIndex& index, NodeId n,
                            uint32_t object, const SignatureEntry* initial);

// Exact node-to-node distance: labels when usable, else bounded Dijkstra
// (signatures cannot answer node-to-node without an object endpoint).
Weight RoutedNodeDistance(const SignatureIndex& index, NodeId u, NodeId v);

// SortByDistance twin: same approximate insertion sort, then exact ranking
// by label distances instead of cursor refinement when the labels are
// usable (falls back to core/distance_ops' sort otherwise). Same deadline
// semantics: on expiry `objects` is left an approximately-ordered
// permutation and the caller tags the result partial. The final order is
// bit-identical to SortByDistance on every route.
void RoutedSortByDistance(const SignatureIndex& index, NodeId n,
                          const RowStage& stage,
                          std::vector<uint32_t>* objects);

// RAII force-off pin: while alive, LabelsUsable is false on every index
// (scoped twin of DSIG_FORCE_NO_LABELS; nests).
class NoLabelsOverride {
 public:
  NoLabelsOverride();
  ~NoLabelsOverride();
  NoLabelsOverride(const NoLabelsOverride&) = delete;
  NoLabelsOverride& operator=(const NoLabelsOverride&) = delete;
};

}  // namespace dsig

#endif  // DSIG_QUERY_PLANNER_H_
