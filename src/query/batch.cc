#include "query/batch.h"

#include <mutex>

#include "obs/op_counters.h"

namespace dsig {

void RunBatch(size_t n, const std::function<void(size_t)>& fn,
              const BatchOptions& options) {
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : &ThreadPool::Global();
  std::mutex mu;
  OpCounters batch;
  const auto chunk = [&](size_t begin, size_t end) {
    // Withdraw this chunk's counter delta from whichever thread ran it —
    // including the caller, which participates in the loop — so the batch
    // total below is credited exactly once.
    const OpCounters before = GlobalOpCounters();
    for (size_t i = begin; i < end; ++i) fn(i);
    const OpCounters delta = GlobalOpCounters() - before;
    GlobalOpCounters() = before;
    std::lock_guard<std::mutex> lock(mu);
    batch += delta;
  };
  try {
    pool->ParallelForChunks(n, options.min_grain, chunk);
  } catch (...) {
    GlobalOpCounters() += batch;
    throw;
  }
  GlobalOpCounters() += batch;
}

std::vector<KnnResult> BatchKnnQuery(const SignatureIndex& index,
                                     const std::vector<NodeId>& queries,
                                     size_t k, KnnResultType type,
                                     const BatchOptions& options) {
  // No batch-wide snapshot here, deliberately: each worker thread takes its
  // own whole-query ReadSnapshot inside SignatureKnnQuery (pins are
  // per-thread), so every individual query is atomic. Holding a shared lock
  // on this thread while workers also acquire it could deadlock against a
  // waiting writer on writer-preferring rwlock implementations.
  std::vector<KnnResult> results(queries.size());
  RunBatch(
      queries.size(),
      [&](size_t i) { results[i] = SignatureKnnQuery(index, queries[i], k, type); },
      options);
  return results;
}

}  // namespace dsig
