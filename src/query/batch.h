// Parallel batch-query driver.
//
// Each query pins its own read snapshot on the index's EpochGate (see
// ARCHITECTURE.md, "Parallelism & thread-safety"), so independent queries
// parallelize trivially even while a live updater runs — except for the op
// counters, which are thread-local
// (obs/op_counters.h). RunBatch repairs that seam: every chunk of queries
// snapshots its thread's counters before running, withdraws its delta after,
// and the merged batch total is credited to the CALLER's thread exactly
// once. Measurement code written for the serial path (MeasureItems, traces,
// tests asserting counter deltas) therefore sees identical numbers whether a
// batch ran on 1 thread or 16.
#ifndef DSIG_QUERY_BATCH_H_
#define DSIG_QUERY_BATCH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "query/knn_query.h"
#include "util/thread_pool.h"

namespace dsig {

struct BatchOptions {
  // nullptr = the process-wide pool.
  ThreadPool* pool = nullptr;
  // Minimum queries per chunk; raise when individual queries are tiny.
  size_t min_grain = 1;
};

// Runs fn(i) for every i in [0, n) across the pool, blocking until done.
// Queries in one chunk run in order; chunks run concurrently. The first
// exception propagates. OpCounters accumulated by the batch land on the
// calling thread (see above), including when fn throws (counts of completed
// chunks are credited before rethrow).
void RunBatch(size_t n, const std::function<void(size_t)>& fn,
              const BatchOptions& options = BatchOptions());

// Convenience wrapper: one kNN query per node of `queries`, results aligned
// with the input. Used by `dsig_tool --threads` and bench_knn's sweep.
std::vector<KnnResult> BatchKnnQuery(const SignatureIndex& index,
                                     const std::vector<NodeId>& queries,
                                     size_t k, KnnResultType type,
                                     const BatchOptions& options =
                                         BatchOptions());

}  // namespace dsig

#endif  // DSIG_QUERY_BATCH_H_
