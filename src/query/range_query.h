// Range query processing on distance signatures (paper §4.1, Algorithm 5).
//
// Returns every object within network distance epsilon of the query node.
// Signature categories confirm or prune most objects outright; only objects
// whose category range straddles epsilon pay for guided backtracking, and
// that backtracking stops the moment the range clears the threshold.
#ifndef DSIG_QUERY_RANGE_QUERY_H_
#define DSIG_QUERY_RANGE_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/signature_index.h"

namespace dsig {

struct RangeQueryResult {
  // Object indexes with d(n, o) <= epsilon, in object order.
  std::vector<uint32_t> objects;
  // Objects that needed refinement (the category range straddled epsilon) —
  // a quality metric for the partition.
  size_t refined = 0;
  // True when the ambient request deadline (util/deadline.h) expired before
  // every object was classified; `objects` then holds the objects confirmed
  // so far (all category-confirmed members plus refined confirms), a
  // well-formed partial answer — a subset of the exact result.
  bool deadline_exceeded = false;
};

RangeQueryResult SignatureRangeQuery(const SignatureIndex& index, NodeId n,
                                     Weight epsilon);

}  // namespace dsig

#endif  // DSIG_QUERY_RANGE_QUERY_H_
