#include "query/join_query.h"

#include <algorithm>
#include <cmath>

#include "core/distance_ops.h"
#include "core/row_stage.h"
#include "obs/trace.h"
#include "query/planner.h"
#include "util/deadline.h"
#include "util/simd/simd.h"

namespace dsig {
namespace {

// Triangle-inequality bounds on d(a, b) from distance ranges at a common
// node: d >= max(0, lb_a - ub_b, lb_b - ub_a), d <= ub_a + ub_b.
Weight PairLowerBound(const DistanceRange& a, const DistanceRange& b) {
  Weight lower = 0;
  if (a.ub != kInfiniteWeight) lower = std::max(lower, b.lb - a.ub);
  if (b.ub != kInfiniteWeight) lower = std::max(lower, a.lb - b.ub);
  return lower;
}

Weight PairUpperBound(const DistanceRange& a, const DistanceRange& b) {
  if (a.ub == kInfiniteWeight || b.ub == kInfiniteWeight) {
    return kInfiniteWeight;
  }
  return a.ub + b.ub;
}

}  // namespace

JoinResult SignatureEpsilonJoin(const SignatureIndex& left,
                                const SignatureIndex& right, NodeId n,
                                Weight epsilon) {
  DSIG_QUERY_TRACE("join");
  const ReadSnapshot left_snapshot(left.epoch_gate());
  const ReadSnapshot right_snapshot(right.epoch_gate());
  DSIG_CHECK_EQ(&left.graph(), &right.graph())
      << "join requires indexes over the same network";
  JoinResult result;
  // An already-expired deadline returns before any row read, so a hopeless
  // request never charges the buffer pool.
  if (DeadlineExpired()) {
    result.deadline_exceeded = true;
    return result;
  }
  static thread_local RowStage left_stage;
  static thread_local RowStage right_stage;
  left.ReadRowStaged(n, &left_stage);
  right.ReadRowStaged(n, &right_stage);
  const size_t num_a = left_stage.size();
  const size_t num_b = right_stage.size();
  const uint8_t* left_cats = left_stage.categories();
  const uint8_t* right_cats = right_stage.categories();
  const CategoryPartition& lp = left.partition();
  const CategoryPartition& rp = right.partition();
  const simd::KernelTable& kernels = simd::Kernels();

  // Lazily-computed exact node distances, shared across pairs.
  std::vector<Weight> left_exact(num_a, -1);
  std::vector<Weight> right_exact(num_b, -1);
  const auto exact_left = [&](uint32_t a) {
    if (left_exact[a] < 0) {
      const SignatureEntry initial = left_stage.entry(a);
      left_exact[a] = RoutedObjectDistance(left, n, a, &initial);
    }
    return left_exact[a];
  };
  const auto exact_right = [&](uint32_t b) {
    if (right_exact[b] < 0) {
      const SignatureEntry initial = right_stage.entry(b);
      right_exact[b] = RoutedObjectDistance(right, n, b, &initial);
    }
    return right_exact[b];
  };

  // Right-hand category ranges, reused across every left object.
  const int m_right = rp.num_categories();
  std::vector<DistanceRange> rb_of(static_cast<size_t>(m_right));
  for (int c = 0; c < m_right; ++c) rb_of[c] = rp.RangeOf(c);

  std::vector<uint32_t> candidates;
  for (uint32_t a = 0; a < num_a; ++a) {
    // Phase boundary per left object: each row of the pair matrix can cost
    // several exact retrievals/evaluations. Pairs confirmed so far are
    // sound, so the partial result is usable.
    if (DeadlineExpired()) {
      result.deadline_exceeded = true;
      return result;
    }
    const DistanceRange ra = lp.RangeOf(left_cats[a]);
    // Category pruning (PairLowerBound > epsilon) is the union of a prefix
    // and a suffix of the right categories: of its two triangle terms, one
    // rises and one falls with the category id. The surviving keep-band
    // [lo, hi) is therefore contiguous and extracts in one vector pass.
    int lo = 0;
    while (lo < m_right && PairLowerBound(ra, rb_of[lo]) > epsilon) ++lo;
    int hi = m_right;
    while (hi > lo && PairLowerBound(ra, rb_of[hi - 1]) > epsilon) --hi;

    candidates.resize(num_b);
    candidates.resize(kernels.extract_in_range(right_cats, num_b, lo, hi,
                                               candidates.data()));
    result.pruned_by_categories += num_b - candidates.size();

    // A co-located pair joins at distance 0 regardless of its category;
    // splice it back in (at its object position) when the band dropped it.
    const ObjectId b_co = right.object_at(left.object_node(a));
    if (b_co != kInvalidObject &&
        !(right_cats[b_co] >= lo && right_cats[b_co] < hi)) {
      candidates.insert(
          std::lower_bound(candidates.begin(), candidates.end(), b_co), b_co);
      --result.pruned_by_categories;  // it was counted as pruned above
    }

    for (const uint32_t b : candidates) {
      if (b == b_co) {
        // Co-located objects join at distance 0.
        result.pairs.push_back({a, b});
        continue;
      }
      // Band membership already certifies PairLowerBound <= epsilon.
      const DistanceRange rb = rb_of[right_cats[b]];
      const Weight upper = PairUpperBound(ra, rb);
      if (upper != kInfiniteWeight && upper <= epsilon) {
        result.pairs.push_back({a, b});
        continue;
      }
      // Refine the two node distances to exact values; often the tightened
      // triangle bounds decide the pair without touching d(a, b) itself.
      const Weight da = exact_left(a);
      const Weight db = exact_right(b);
      if (std::abs(da - db) > epsilon) {
        continue;
      }
      if (da + db <= epsilon) {
        result.pairs.push_back({a, b});
        continue;
      }
      ++result.exact_evaluations;
      // No category hint here — the signature row at a's node is unread, and
      // the label route keeps it that way.
      const Weight dab =
          RoutedObjectDistance(right, left.object_node(a), b, nullptr);
      if (dab <= epsilon) result.pairs.push_back({a, b});
    }
  }
  return result;
}

}  // namespace dsig
