#include "query/join_query.h"

#include <algorithm>
#include <cmath>

#include "core/distance_ops.h"
#include "obs/trace.h"
#include "util/deadline.h"

namespace dsig {
namespace {

// Triangle-inequality bounds on d(a, b) from distance ranges at a common
// node: d >= max(0, lb_a - ub_b, lb_b - ub_a), d <= ub_a + ub_b.
Weight PairLowerBound(const DistanceRange& a, const DistanceRange& b) {
  Weight lower = 0;
  if (a.ub != kInfiniteWeight) lower = std::max(lower, b.lb - a.ub);
  if (b.ub != kInfiniteWeight) lower = std::max(lower, a.lb - b.ub);
  return lower;
}

Weight PairUpperBound(const DistanceRange& a, const DistanceRange& b) {
  if (a.ub == kInfiniteWeight || b.ub == kInfiniteWeight) {
    return kInfiniteWeight;
  }
  return a.ub + b.ub;
}

}  // namespace

JoinResult SignatureEpsilonJoin(const SignatureIndex& left,
                                const SignatureIndex& right, NodeId n,
                                Weight epsilon) {
  DSIG_QUERY_TRACE("join");
  const ReadSnapshot left_snapshot(left.epoch_gate());
  const ReadSnapshot right_snapshot(right.epoch_gate());
  DSIG_CHECK_EQ(&left.graph(), &right.graph())
      << "join requires indexes over the same network";
  JoinResult result;
  // An already-expired deadline returns before any row read, so a hopeless
  // request never charges the buffer pool.
  if (DeadlineExpired()) {
    result.deadline_exceeded = true;
    return result;
  }
  const SignatureRow left_row = left.ReadRow(n);
  const SignatureRow right_row = right.ReadRow(n);
  const CategoryPartition& lp = left.partition();
  const CategoryPartition& rp = right.partition();

  // Lazily-computed exact node distances, shared across pairs.
  std::vector<Weight> left_exact(left_row.size(), -1);
  std::vector<Weight> right_exact(right_row.size(), -1);
  const auto exact_left = [&](uint32_t a) {
    if (left_exact[a] < 0) {
      RetrievalCursor cursor(&left, n, a, &left_row[a]);
      left_exact[a] = cursor.RetrieveExact();
    }
    return left_exact[a];
  };
  const auto exact_right = [&](uint32_t b) {
    if (right_exact[b] < 0) {
      RetrievalCursor cursor(&right, n, b, &right_row[b]);
      right_exact[b] = cursor.RetrieveExact();
    }
    return right_exact[b];
  };

  for (uint32_t a = 0; a < left_row.size(); ++a) {
    // Phase boundary per left object: each row of the pair matrix can cost
    // several exact retrievals/evaluations. Pairs confirmed so far are
    // sound, so the partial result is usable.
    if (DeadlineExpired()) {
      result.deadline_exceeded = true;
      return result;
    }
    const DistanceRange ra = lp.RangeOf(left_row[a].category);
    for (uint32_t b = 0; b < right_row.size(); ++b) {
      if (left.object_node(a) == right.object_node(b)) {
        // Co-located objects join at distance 0.
        result.pairs.push_back({a, b});
        continue;
      }
      const DistanceRange rb = rp.RangeOf(right_row[b].category);
      if (PairLowerBound(ra, rb) > epsilon) {
        ++result.pruned_by_categories;
        continue;
      }
      const Weight upper = PairUpperBound(ra, rb);
      if (upper != kInfiniteWeight && upper <= epsilon) {
        result.pairs.push_back({a, b});
        continue;
      }
      // Refine the two node distances to exact values; often the tightened
      // triangle bounds decide the pair without touching d(a, b) itself.
      const Weight da = exact_left(a);
      const Weight db = exact_right(b);
      if (std::abs(da - db) > epsilon) {
        continue;
      }
      if (da + db <= epsilon) {
        result.pairs.push_back({a, b});
        continue;
      }
      ++result.exact_evaluations;
      const Weight dab = ExactDistance(right, left.object_node(a), b);
      if (dab <= epsilon) result.pairs.push_back({a, b});
    }
  }
  return result;
}

}  // namespace dsig
