// ε-join between two datasets at a node (paper §4.3).
//
// Given two signature indexes over the *same* road network (e.g., hotels and
// restaurants), the ε-join at node n returns object pairs (a, b) with
// d(a, b) <= ε. The two signatures of n are joined: triangle bounds
// |d(n,a) − d(n,b)| <= d(a,b) <= d(n,a) + d(n,b), evaluated on category
// ranges, prune or confirm most pairs; surviving candidates refine their
// node distances and finally compute the exact pair distance by guided
// backtracking from a's node through b's index.
#ifndef DSIG_QUERY_JOIN_QUERY_H_
#define DSIG_QUERY_JOIN_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/signature_index.h"

namespace dsig {

struct JoinPair {
  uint32_t left;   // object index in the left index
  uint32_t right;  // object index in the right index
};

struct JoinResult {
  std::vector<JoinPair> pairs;
  size_t pruned_by_categories = 0;  // pairs dismissed from s(n) alone
  size_t exact_evaluations = 0;     // pairs needing an exact d(a, b)
  // True when the ambient request deadline (util/deadline.h) expired before
  // every pair was classified; `pairs` then holds the confirmed pairs found
  // so far, a well-formed partial answer.
  bool deadline_exceeded = false;
};

// Both indexes must be built over the same RoadNetwork instance.
JoinResult SignatureEpsilonJoin(const SignatureIndex& left,
                                const SignatureIndex& right, NodeId n,
                                Weight epsilon);

}  // namespace dsig

#endif  // DSIG_QUERY_JOIN_QUERY_H_
