#include "query/continuous_knn.h"

#include <algorithm>

#include "obs/trace.h"
#include "query/knn_query.h"
#include "util/logging.h"

namespace dsig {

CnnResult SignatureContinuousKnn(const SignatureIndex& index,
                                 const std::vector<NodeId>& path, size_t k) {
  DSIG_QUERY_TRACE("cnn");
  const ReadSnapshot snapshot(index.epoch_gate());
  DSIG_CHECK_GE(k, 1u);
  CnnResult result;
  if (path.empty()) return result;
  for (size_t i = 1; i < path.size(); ++i) {
    DSIG_CHECK(index.graph().FindEdge(path[i - 1], path[i]) != kInvalidEdge)
        << "query path must be a walk in the network";
  }

  for (size_t i = 0; i < path.size(); ++i) {
    // Validity scopes track *membership* changes (UBA's notion), so the
    // cheapest result type suffices.
    KnnResult knn = SignatureKnnQuery(index, path[i], k, KnnResultType::kType3);
    ++result.knn_evaluations;
    std::sort(knn.objects.begin(), knn.objects.end());
    if (!result.intervals.empty() &&
        result.intervals.back().objects == knn.objects) {
      result.intervals.back().last_index = i;
      continue;
    }
    result.intervals.push_back({i, i, knn.objects});
  }
  return result;
}

}  // namespace dsig
