// Aggregation queries over a distance range (paper §4.3).
//
// The paper's generalized processing paradigm: read the signature, confirm
// or prune candidates from category ranges, and refine only the stragglers.
// COUNT needs no exact distances at all beyond the stragglers; SUM/MIN/MAX
// over the result set retrieve exact distances for members only.
#ifndef DSIG_QUERY_AGGREGATE_QUERY_H_
#define DSIG_QUERY_AGGREGATE_QUERY_H_

#include <cstdint>

#include "core/signature_index.h"

namespace dsig {

struct CountResult {
  size_t count = 0;
  size_t refined = 0;  // candidates that needed backtracking
};

// COUNT(*) of objects with d(n, o) <= epsilon.
CountResult SignatureCountQuery(const SignatureIndex& index, NodeId n,
                                Weight epsilon);

struct DistanceAggregateResult {
  size_t count = 0;
  Weight sum = 0;
  Weight min = kInfiniteWeight;  // kInfiniteWeight when count == 0
  Weight max = 0;
};

// SUM/MIN/MAX of d(n, o) over objects with d(n, o) <= epsilon. Exact
// distances of all members are retrieved, so this is the expensive flavour.
DistanceAggregateResult SignatureDistanceAggregateQuery(
    const SignatureIndex& index, NodeId n, Weight epsilon);

}  // namespace dsig

#endif  // DSIG_QUERY_AGGREGATE_QUERY_H_
