#include "query/reverse_knn.h"

#include <algorithm>

#include "core/distance_ops.h"
#include "core/row_stage.h"
#include "obs/trace.h"
#include "util/simd/simd.h"

namespace dsig {

ReverseKnnResult SignatureReverseKnn(const SignatureIndex& index, NodeId q,
                                     size_t k) {
  DSIG_QUERY_TRACE("rknn");
  const ReadSnapshot snapshot(index.epoch_gate());
  DSIG_CHECK_GE(k, 1u);
  ReverseKnnResult result;
  const size_t num_objects = index.num_objects();
  if (num_objects <= 1) {
    // A lone object has no k-th neighbour; by convention every node is in
    // its neighbourhood.
    if (num_objects == 1) result.objects.push_back(0);
    return result;
  }
  k = std::min(k, num_objects - 1);

  static thread_local RowStage stage;
  index.ReadRowStaged(q, &stage);
  const uint8_t* cats = stage.categories();
  const CategoryPartition& partition = index.partition();
  const ObjectDistanceTable& table = index.object_table();
  const simd::KernelTable& kernels = simd::Kernels();
  const Weight last_lb =
      partition.LowerBound(partition.num_categories() - 1);

  std::vector<Weight> neighbor_distances;
  for (uint32_t o = 0; o < num_objects; ++o) {
    // o's k-th nearest object distance, from the in-memory table. Far pairs
    // (the kInfiniteWeight slots) only bound it from below; resolve them
    // exactly (by backtracking from o's node) only when the decision needs
    // it. The near/far split of o's table row runs as two vector compaction
    // passes around the diagonal slot.
    const Weight* distances = table.Row(o);
    neighbor_distances.resize(num_objects);
    size_t near = kernels.compact_finite_f64(distances, o,
                                             neighbor_distances.data());
    near += kernels.compact_finite_f64(distances + o + 1, num_objects - o - 1,
                                       neighbor_distances.data() + near);
    neighbor_distances.resize(near);
    {
      const obs::Span sort_span(obs::Phase::kSort);
      std::sort(neighbor_distances.begin(), neighbor_distances.end());
    }

    const bool threshold_exact = neighbor_distances.size() >= k;
    // When fewer than k near pairs exist, the k-th neighbour is a far pair:
    // its distance is at least the last category's lower bound.
    const Weight threshold_lb =
        threshold_exact ? neighbor_distances[k - 1] : last_lb;

    const DistanceRange range = partition.RangeOf(cats[o]);
    // Quick accept: every distance in the range is within the threshold.
    if (range.ub != kInfiniteWeight && range.ub <= threshold_lb) {
      result.objects.push_back(o);
      continue;
    }
    // Quick reject only against an exact threshold.
    if (threshold_exact && range.lb > threshold_lb) continue;

    // Refine d(o, q) exactly (d is symmetric on undirected networks, so the
    // row at q holds it).
    ++result.refined;
    const SignatureEntry initial = stage.entry(o);
    RetrievalCursor cursor(&index, q, o, &initial);
    const Weight d_oq = cursor.RetrieveExact();
    if (threshold_exact) {
      if (d_oq <= threshold_lb) result.objects.push_back(o);
      continue;
    }
    if (d_oq <= threshold_lb) {
      result.objects.push_back(o);
      continue;
    }
    // Both d(o, q) and the k-th neighbour live in the last category: the
    // table dropped the exact values, so retrieve every far pair's distance
    // through the index and settle the comparison exactly.
    std::vector<Weight> all = neighbor_distances;
    for (uint32_t x = 0; x < num_objects; ++x) {
      if (x == o || !table.IsFar(o, x)) continue;
      all.push_back(ExactDistance(index, index.object_node(o), x));
    }
    {
      const obs::Span sort_span(obs::Phase::kSort);
      std::sort(all.begin(), all.end());
    }
    DSIG_CHECK_GE(all.size(), k);
    if (d_oq <= all[k - 1]) result.objects.push_back(o);
  }
  return result;
}

}  // namespace dsig
