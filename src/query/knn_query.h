// k-nearest-neighbour query processing (paper §4.2, Algorithm 6).
//
// The paper differentiates kNN queries by how much distance information the
// caller needs; cheaper types skip work:
//  * type 3 — just the k nearest objects, unordered. Categories confirm
//    whole buckets; only the boundary bucket is (exactly) sorted.
//  * type 2 — objects in distance order, distances themselves not returned:
//    every contributing bucket is sorted.
//  * type 1 — objects with their exact distances: each result's distance is
//    retrieved by guided backtracking.
#ifndef DSIG_QUERY_KNN_QUERY_H_
#define DSIG_QUERY_KNN_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/signature_index.h"

namespace dsig {

enum class KnnResultType {
  kType1,  // exact distances returned
  kType2,  // distance-ordered, no distances
  kType3,  // membership only
};

struct KnnResult {
  // The k nearest object indexes. Ordered by distance for types 1 and 2;
  // unspecified order for type 3.
  std::vector<uint32_t> objects;
  // Exact distances aligned with `objects`; filled for type 1 only.
  std::vector<Weight> distances;
  // True when the ambient request deadline (util/deadline.h) expired before
  // the query finished. The result is a well-formed partial answer: objects
  // confirmed so far (possibly fewer than k, possibly approximately ordered),
  // with `distances` still aligned to `objects` for type 1.
  bool deadline_exceeded = false;
};

KnnResult SignatureKnnQuery(const SignatureIndex& index, NodeId n, size_t k,
                            KnnResultType type);

}  // namespace dsig

#endif  // DSIG_QUERY_KNN_QUERY_H_
