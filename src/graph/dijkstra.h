// Single-source shortest paths (Dijkstra, 1959) on a RoadNetwork.
//
// This is the workhorse substrate: the paper uses Dijkstra both online (the
// INE baseline and the "network expansion" paradigm of §2) and offline (one
// run per object to build signatures, §5.2, and the multi-source variant to
// build the Network Voronoi Diagram baseline).
#ifndef DSIG_GRAPH_DIJKSTRA_H_
#define DSIG_GRAPH_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace dsig {

// Shortest-path tree from one source (or forest from many).
struct ShortestPathTree {
  // dist[n] = network distance from the (nearest) source; kInfiniteWeight if
  // unreachable.
  std::vector<Weight> dist;
  // parent[n] = previous node on the shortest path from the source to n;
  // kInvalidNode for sources and unreachable nodes.
  std::vector<NodeId> parent;
  // parent_edge[n] = edge connecting parent[n] to n; kInvalidEdge when no
  // parent.
  std::vector<EdgeId> parent_edge;
  // For multi-source runs: the source each node was claimed by. Single-source
  // runs leave it empty.
  std::vector<NodeId> owner;
  // Nodes in the order Dijkstra settled them (sources first).
  std::vector<NodeId> settle_order;
};

// Full single-source run over all reachable nodes.
ShortestPathTree RunDijkstra(const RoadNetwork& graph, NodeId source);

// Single-source run that stops settling nodes beyond `radius`: every node n
// with dist[n] <= radius is settled exactly; more distant nodes report
// kInfiniteWeight.
ShortestPathTree RunDijkstraBounded(const RoadNetwork& graph, NodeId source,
                                    Weight radius);

// Multi-source run: grows all sources simultaneously; each node is owned by
// its nearest source (ties broken by settle order, i.e., deterministically).
// This computes the Network Voronoi Diagram's cell assignment in one sweep.
ShortestPathTree RunDijkstraMultiSource(const RoadNetwork& graph,
                                        const std::vector<NodeId>& sources);

// Point-to-point distance; kInfiniteWeight when disconnected. Terminates as
// soon as `target` is settled.
Weight DijkstraDistance(const RoadNetwork& graph, NodeId source,
                        NodeId target);

// Reconstructs the node path source -> ... -> target from a single-source
// tree rooted at `source`. Empty when target is unreachable.
std::vector<NodeId> ReconstructPath(const ShortestPathTree& tree,
                                    NodeId source, NodeId target);

}  // namespace dsig

#endif  // DSIG_GRAPH_DIJKSTRA_H_
