#include "graph/graph_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace dsig {
namespace {

// Uniform bucket grid over node positions for nearest-neighbour lookups
// during generation.
class PointGrid {
 public:
  PointGrid(const RoadNetwork& graph, double cell_size)
      : graph_(graph), cell_size_(cell_size) {
    min_x_ = min_y_ = 0;
    double max_x = 0, max_y = 0;
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      const Point& p = graph.position(n);
      min_x_ = std::min(min_x_, p.x);
      min_y_ = std::min(min_y_, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    cols_ = std::max<int>(1, static_cast<int>((max_x - min_x_) / cell_size_) + 1);
    rows_ = std::max<int>(1, static_cast<int>((max_y - min_y_) / cell_size_) + 1);
    cells_.resize(static_cast<size_t>(cols_) * rows_);
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      cells_[CellIndex(graph.position(n))].push_back(n);
    }
  }

  // The `count` nearest nodes to `n` (excluding `n` itself), nearest first.
  std::vector<NodeId> NearestNeighbors(NodeId n, size_t count) const {
    const Point& p = graph_.position(n);
    const int cx = ColOf(p.x);
    const int cy = RowOf(p.y);
    std::vector<std::pair<double, NodeId>> found;
    // Expand square rings of cells until we have enough candidates whose
    // distance is certified smaller than the unexplored ring boundary.
    for (int radius = 0; radius < std::max(cols_, rows_); ++radius) {
      for (int y = cy - radius; y <= cy + radius; ++y) {
        for (int x = cx - radius; x <= cx + radius; ++x) {
          if (std::max(std::abs(x - cx), std::abs(y - cy)) != radius) continue;
          if (x < 0 || x >= cols_ || y < 0 || y >= rows_) continue;
          for (const NodeId m :
               cells_[static_cast<size_t>(y) * cols_ + x]) {
            if (m == n) continue;
            const Point& q = graph_.position(m);
            found.push_back({std::hypot(p.x - q.x, p.y - q.y), m});
          }
        }
      }
      if (found.size() >= count) {
        std::sort(found.begin(), found.end());
        // Everything within `radius * cell_size_` of p is already scanned.
        const double certified = radius * cell_size_;
        if (found[count - 1].first <= certified) break;
      }
    }
    std::sort(found.begin(), found.end());
    if (found.size() > count) found.resize(count);
    std::vector<NodeId> result;
    result.reserve(found.size());
    for (const auto& [d, m] : found) result.push_back(m);
    return result;
  }

 private:
  size_t CellIndex(const Point& p) const {
    return static_cast<size_t>(RowOf(p.y)) * cols_ + ColOf(p.x);
  }
  int ColOf(double x) const {
    return std::clamp(static_cast<int>((x - min_x_) / cell_size_), 0,
                      cols_ - 1);
  }
  int RowOf(double y) const {
    return std::clamp(static_cast<int>((y - min_y_) / cell_size_), 0,
                      rows_ - 1);
  }

  const RoadNetwork& graph_;
  double cell_size_;
  double min_x_, min_y_;
  int cols_, rows_;
  std::vector<std::vector<NodeId>> cells_;
};

Weight RandomIntegerWeight(Random* rng, int min_weight, int max_weight) {
  return static_cast<Weight>(rng->NextInt(min_weight, max_weight));
}

// Connects every component to the component of node 0 by adding one edge
// between a node of the stray component and its Euclidean-nearest node in
// the main component.
void ConnectComponents(RoadNetwork* graph, Random* rng, int min_weight,
                       int max_weight) {
  const size_t n = graph->num_nodes();
  if (n == 0) return;
  while (true) {
    std::vector<int32_t> component(n, -1);
    int32_t next_component = 0;
    for (NodeId start = 0; start < n; ++start) {
      if (component[start] >= 0) continue;
      std::vector<NodeId> stack = {start};
      component[start] = next_component;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const AdjacencyEntry& entry : graph->adjacency(u)) {
          if (entry.removed || component[entry.to] >= 0) continue;
          component[entry.to] = next_component;
          stack.push_back(entry.to);
        }
      }
      ++next_component;
    }
    if (next_component == 1) return;
    // Attach the first stray node we find to the nearest main-component node.
    NodeId stray = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (component[v] != component[0]) {
        stray = v;
        break;
      }
    }
    double best = kInfiniteWeight;
    NodeId anchor = kInvalidNode;
    const Point& p = graph->position(stray);
    for (NodeId v = 0; v < n; ++v) {
      if (component[v] != component[0]) continue;
      const Point& q = graph->position(v);
      const double d = std::hypot(p.x - q.x, p.y - q.y);
      if (d < best) {
        best = d;
        anchor = v;
      }
    }
    graph->AddEdge(stray, anchor,
                   RandomIntegerWeight(rng, min_weight, max_weight));
  }
}

// Wires each node to a random (exponentially distributed) number of its
// nearest unconnected neighbours with random integer weights.
void ConnectLocally(RoadNetwork* graph, Random* rng, double mean_connections,
                    int min_weight, int max_weight, double cell_size) {
  PointGrid point_grid(*graph, cell_size);
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    // Exponential sample rounded up: at least one initiated connection keeps
    // isolated nodes rare.
    const double x = -mean_connections * std::log(1.0 - rng->NextDouble());
    const size_t connections =
        std::clamp<size_t>(static_cast<size_t>(std::ceil(x)), 1, 8);
    const std::vector<NodeId> neighbors =
        point_grid.NearestNeighbors(u, connections + 2);
    size_t made = 0;
    for (const NodeId v : neighbors) {
      if (made >= connections) break;
      if (graph->FindEdge(u, v) != kInvalidEdge) continue;
      graph->AddEdge(u, v, RandomIntegerWeight(rng, min_weight, max_weight));
      ++made;
    }
  }
}

}  // namespace

RoadNetwork MakeGrid(const GridOptions& options) {
  DSIG_CHECK_GT(options.width, 0);
  DSIG_CHECK_GT(options.height, 0);
  RoadNetwork graph;
  for (int y = 0; y < options.height; ++y) {
    for (int x = 0; x < options.width; ++x) {
      graph.AddNode({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  const auto id = [&](int x, int y) {
    return static_cast<NodeId>(y * options.width + x);
  };
  for (int y = 0; y < options.height; ++y) {
    for (int x = 0; x < options.width; ++x) {
      if (x + 1 < options.width) {
        graph.AddEdge(id(x, y), id(x + 1, y), options.edge_weight);
      }
      if (y + 1 < options.height) {
        graph.AddEdge(id(x, y), id(x, y + 1), options.edge_weight);
      }
    }
  }
  return graph;
}

RoadNetwork MakeRandomPlanar(const RandomPlanarOptions& options) {
  DSIG_CHECK_GT(options.num_nodes, 1u);
  Random rng(options.seed);
  RoadNetwork graph;
  // Unit point density: side length sqrt(n).
  const double side = std::sqrt(static_cast<double>(options.num_nodes));
  for (size_t i = 0; i < options.num_nodes; ++i) {
    graph.AddNode({rng.NextDouble(0, side), rng.NextDouble(0, side)});
  }
  ConnectLocally(&graph, &rng, options.mean_connections, options.min_weight,
                 options.max_weight, /*cell_size=*/1.5);
  ConnectComponents(&graph, &rng, options.min_weight, options.max_weight);
  return graph;
}

RoadNetwork MakeClusteredContinental(
    const ClusteredContinentalOptions& options) {
  DSIG_CHECK_GT(options.num_clusters, 0u);
  DSIG_CHECK_GT(options.nodes_per_cluster, 1u);
  Random rng(options.seed);
  RoadNetwork graph;

  // Continental extent scales with total settlement count so clusters stay
  // well separated.
  const double continent =
      20.0 * std::sqrt(static_cast<double>(options.num_clusters) *
                       options.nodes_per_cluster);
  const double city_radius = std::sqrt(static_cast<double>(
      options.nodes_per_cluster));  // unit density inside a city

  std::vector<Point> centers;
  std::vector<NodeId> hubs;  // a representative junction per cluster
  for (size_t c = 0; c < options.num_clusters; ++c) {
    centers.push_back(
        {rng.NextDouble(0, continent), rng.NextDouble(0, continent)});
  }
  for (size_t c = 0; c < options.num_clusters; ++c) {
    const NodeId first = static_cast<NodeId>(graph.num_nodes());
    for (size_t i = 0; i < options.nodes_per_cluster; ++i) {
      // Box-Muller radial Gaussian scatter around the centre.
      const double r =
          city_radius * std::sqrt(-2.0 * std::log(1.0 - rng.NextDouble()));
      const double theta = rng.NextDouble(0, 2 * 3.14159265358979323846);
      graph.AddNode({centers[c].x + r * std::cos(theta),
                     centers[c].y + r * std::sin(theta)});
    }
    hubs.push_back(first);
  }

  ConnectLocally(&graph, &rng, /*mean_connections=*/2.0, options.min_weight,
                 options.max_weight, /*cell_size=*/2.0);

  // Highways: each hub connects to its 2 nearest other hubs, weight
  // proportional to Euclidean length.
  for (size_t c = 0; c < options.num_clusters; ++c) {
    std::vector<std::pair<double, size_t>> others;
    for (size_t d = 0; d < options.num_clusters; ++d) {
      if (d == c) continue;
      others.push_back({std::hypot(centers[c].x - centers[d].x,
                                   centers[c].y - centers[d].y),
                        d});
    }
    std::sort(others.begin(), others.end());
    const size_t links = std::min<size_t>(2, others.size());
    for (size_t i = 0; i < links; ++i) {
      const NodeId a = hubs[c];
      const NodeId b = hubs[others[i].second];
      if (graph.FindEdge(a, b) != kInvalidEdge) continue;
      const Weight w = std::max<Weight>(
          1, std::round(options.highway_weight_per_unit * others[i].first));
      graph.AddEdge(a, b, w);
    }
  }
  ConnectComponents(&graph, &rng, options.min_weight, options.max_weight);
  return graph;
}

}  // namespace dsig
