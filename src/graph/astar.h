// A* point-to-point search (paper §2 cites A* with expansion heuristics as an
// alternative to Dijkstra for network expansion).
//
// The heuristic must be admissible (never overestimate the remaining network
// distance) for the returned distance to be exact. On road networks whose
// weights are metric road lengths, scaled Euclidean distance qualifies; on
// networks with arbitrary weights (e.g., travel times), only the zero
// heuristic is safe — the same caveat the paper raises against IER.
#ifndef DSIG_GRAPH_ASTAR_H_
#define DSIG_GRAPH_ASTAR_H_

#include <functional>
#include <vector>

#include "graph/road_network.h"

namespace dsig {

// Lower-bound estimate of the network distance from a node to the target.
using AStarHeuristic = std::function<Weight(NodeId)>;

struct AStarResult {
  Weight distance = kInfiniteWeight;
  std::vector<NodeId> path;  // empty when unreachable
  size_t nodes_expanded = 0;
};

// Exact point-to-point search with the given admissible heuristic.
AStarResult RunAStar(const RoadNetwork& graph, NodeId source, NodeId target,
                     const AStarHeuristic& heuristic);

// h(n) = 0: degenerates to bidirectionally-unguided Dijkstra.
AStarHeuristic ZeroHeuristic();

// h(n) = scale * euclidean(n, target). `scale` must satisfy
// scale * euclidean(u, v) <= weight(u, v) for every edge for admissibility;
// MaxAdmissibleEuclideanScale computes the largest such scale.
AStarHeuristic EuclideanHeuristic(const RoadNetwork& graph, NodeId target,
                                  double scale);

// Largest `scale` for which EuclideanHeuristic is admissible on `graph`:
// min over live edges of weight / euclidean-length (edges between co-located
// points impose no constraint). Returns 0 for an edgeless graph.
double MaxAdmissibleEuclideanScale(const RoadNetwork& graph);

}  // namespace dsig

#endif  // DSIG_GRAPH_ASTAR_H_
