#include "graph/astar.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

namespace dsig {
namespace {

double EuclideanDistance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace

AStarResult RunAStar(const RoadNetwork& graph, NodeId source, NodeId target,
                     const AStarHeuristic& heuristic) {
  DSIG_CHECK_LT(source, graph.num_nodes());
  DSIG_CHECK_LT(target, graph.num_nodes());
  const size_t n = graph.num_nodes();
  std::vector<Weight> g(n, kInfiniteWeight);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<bool> settled(n, false);

  // (f = g + h, node) min-heap with lazy deletion.
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  g[source] = 0;
  heap.push({heuristic(source), source});

  AStarResult result;
  while (!heap.empty()) {
    const NodeId u = heap.top().second;
    heap.pop();
    if (settled[u]) continue;
    settled[u] = true;
    ++result.nodes_expanded;
    if (u == target) break;
    for (const AdjacencyEntry& entry : graph.adjacency(u)) {
      if (entry.removed || settled[entry.to]) continue;
      const Weight nd = g[u] + entry.weight;
      if (nd < g[entry.to]) {
        g[entry.to] = nd;
        parent[entry.to] = u;
        heap.push({nd + heuristic(entry.to), entry.to});
      }
    }
  }
  if (!settled[target]) return result;

  result.distance = g[target];
  for (NodeId v = target; v != kInvalidNode; v = parent[v]) {
    result.path.push_back(v);
  }
  std::reverse(result.path.begin(), result.path.end());
  DSIG_CHECK_EQ(result.path.front(), source);
  return result;
}

AStarHeuristic ZeroHeuristic() {
  return [](NodeId) { return Weight{0}; };
}

AStarHeuristic EuclideanHeuristic(const RoadNetwork& graph, NodeId target,
                                  double scale) {
  const Point goal = graph.position(target);
  return [&graph, goal, scale](NodeId n) {
    return scale * EuclideanDistance(graph.position(n), goal);
  };
}

double MaxAdmissibleEuclideanScale(const RoadNetwork& graph) {
  double scale = kInfiniteWeight;
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (graph.edge_removed(e)) continue;
    const auto [u, v] = graph.edge_endpoints(e);
    const double len = EuclideanDistance(graph.position(u), graph.position(v));
    if (len > 0) scale = std::min(scale, graph.edge_weight(e) / len);
  }
  return scale == kInfiniteWeight ? 0.0 : scale;
}

}  // namespace dsig
