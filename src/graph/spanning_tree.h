// Per-object shortest-path spanning trees with incremental maintenance.
//
// Signature construction (§5.2) builds the shortest-path spanning tree of
// every object; signature maintenance (§5.4) keeps those trees — plus a
// reverse index from each edge to the objects whose tree uses it — up to
// date under edge insertions, removals, and weight changes. The forest is
// the "intermediate result" the paper says to retain.
//
// Usage: mutate the RoadNetwork first (AddEdge / RemoveEdge / SetEdgeWeight),
// then call the matching On* notification; it returns every (object, node)
// pair whose distance or parent changed, which the signature layer translates
// into category/link rewrites.
#ifndef DSIG_GRAPH_SPANNING_TREE_H_
#define DSIG_GRAPH_SPANNING_TREE_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace dsig {

class ThreadPool;

// One tree-entry change produced by an update notification.
struct TreeChange {
  uint32_t object_index;  // position in objects(), not the node id
  NodeId node;
};

class SpanningForest {
 public:
  // `graph` must outlive the forest; `objects` are the dataset nodes.
  // Call Build() before any query.
  SpanningForest(const RoadNetwork* graph, std::vector<NodeId> objects);

  SpanningForest(SpanningForest&&) = default;
  SpanningForest& operator=(SpanningForest&&) = default;
  SpanningForest(const SpanningForest&) = delete;
  SpanningForest& operator=(const SpanningForest&) = delete;

  // Runs one Dijkstra per object and fills the reverse edge index. The node
  // count of the graph is frozen from this point on (edges may still change).
  // The Dijkstras run on `pool` (nullptr = the process-wide pool); each
  // writes a disjoint row-major slice, so the result does not depend on the
  // pool size.
  void Build(ThreadPool* pool = nullptr);

  size_t num_objects() const { return objects_.size(); }
  const std::vector<NodeId>& objects() const { return objects_; }

  // Network distance from object #object_index to `n` (kInfiniteWeight when
  // unreachable).
  Weight dist(uint32_t object_index, NodeId n) const {
    return dist_[Slot(object_index, n)];
  }

  // Previous node on the path object -> n, i.e., n's parent in the object's
  // tree. In signature terms this is the *next hop from n toward the object*.
  NodeId parent(uint32_t object_index, NodeId n) const {
    return parent_[Slot(object_index, n)];
  }

  EdgeId parent_edge(uint32_t object_index, NodeId n) const {
    return parent_edge_[Slot(object_index, n)];
  }

  // Objects whose spanning tree currently traverses `edge` (§5.4's reverse
  // index); empty for edges added after Build until a tree adopts them.
  std::vector<uint32_t> ObjectsUsingEdge(EdgeId edge) const;

  // Notifications; the graph mutation must already be applied. Each returns
  // the deduplicated set of changed tree entries.
  std::vector<TreeChange> OnEdgeAddedOrDecreased(EdgeId edge);
  std::vector<TreeChange> OnEdgeIncreasedOrRemoved(EdgeId edge);

 private:
  size_t Slot(uint32_t object_index, NodeId n) const {
    DSIG_CHECK_LT(object_index, objects_.size());
    DSIG_CHECK_LT(n, num_nodes_);
    return static_cast<size_t>(object_index) * num_nodes_ + n;
  }

  void SetParentEdge(uint32_t object_index, NodeId n, EdgeId edge);
  void BumpEdgeUse(EdgeId edge, uint32_t object_index, int delta);
  void EnsureReverseIndexSize();

  // Collects the subtree of object #object_index rooted at `root` (children
  // discovered through adjacency + parent pointers).
  std::vector<NodeId> CollectSubtree(uint32_t object_index, NodeId root) const;

  const RoadNetwork* graph_;
  std::vector<NodeId> objects_;
  size_t num_nodes_ = 0;
  bool built_ = false;

  // Row-major [object][node] arrays.
  std::vector<Weight> dist_;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;

  // edge id -> (object index, number of nodes whose parent edge it is).
  // Counts make membership updates O(objects-per-edge) instead of O(nodes).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> reverse_index_;
};

}  // namespace dsig

#endif  // DSIG_GRAPH_SPANNING_TREE_H_
