#include "graph/ccam.h"

#include <algorithm>
#include <queue>

namespace dsig {

std::vector<NodeId> ComputeCcamOrder(const RoadNetwork& graph,
                                     size_t nodes_per_cluster) {
  DSIG_CHECK_GE(nodes_per_cluster, 1u);
  const size_t n = graph.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);

  // connectivity[v] = number of live edges from v into the cluster being
  // grown; the greedy rule picks the most connected fringe node next.
  std::vector<uint32_t> connectivity(n, 0);
  // (connectivity snapshot, node) max-heap with lazy deletion.
  using Entry = std::pair<uint32_t, NodeId>;
  std::priority_queue<Entry> fringe;

  NodeId next_seed = 0;
  while (order.size() < n) {
    // Start a new cluster from the lowest-id unplaced node.
    while (next_seed < n && placed[next_seed]) ++next_seed;
    DSIG_CHECK_LT(next_seed, n);
    fringe = {};
    fringe.push({0, next_seed});
    size_t cluster_size = 0;
    while (cluster_size < nodes_per_cluster && !fringe.empty()) {
      const auto [conn, u] = fringe.top();
      fringe.pop();
      if (placed[u] || conn != connectivity[u]) continue;  // stale entry
      placed[u] = true;
      order.push_back(u);
      ++cluster_size;
      for (const AdjacencyEntry& entry : graph.adjacency(u)) {
        if (entry.removed || placed[entry.to]) continue;
        ++connectivity[entry.to];
        fringe.push({connectivity[entry.to], entry.to});
      }
    }
    // Reset fringe connectivity so the next cluster starts clean. Only nodes
    // touched by this cluster can be non-zero; clearing lazily via the heap
    // would leak state, so sweep the placed nodes' neighbours.
    if (order.size() < n) {
      for (size_t i = order.size() - cluster_size; i < order.size(); ++i) {
        for (const AdjacencyEntry& entry : graph.adjacency(order[i])) {
          connectivity[entry.to] = 0;
        }
      }
    }
  }
  return order;
}

double IntraClusterEdgeFraction(const RoadNetwork& graph,
                                const std::vector<NodeId>& order,
                                size_t nodes_per_cluster) {
  DSIG_CHECK_EQ(order.size(), graph.num_nodes());
  std::vector<size_t> cluster_of(graph.num_nodes());
  for (size_t slot = 0; slot < order.size(); ++slot) {
    cluster_of[order[slot]] = slot / nodes_per_cluster;
  }
  size_t intra = 0, total = 0;
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (graph.edge_removed(e)) continue;
    ++total;
    const auto [u, v] = graph.edge_endpoints(e);
    if (cluster_of[u] == cluster_of[v]) ++intra;
  }
  return total == 0 ? 1.0 : static_cast<double>(intra) / total;
}

}  // namespace dsig
