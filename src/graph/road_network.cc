#include "graph/road_network.h"

#include <algorithm>
#include <vector>

namespace dsig {

NodeId RoadNetwork::AddNode(Point position) {
  adjacency_.emplace_back();
  positions_.push_back(position);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

EdgeId RoadNetwork::AddEdge(NodeId u, NodeId v, Weight weight) {
  DSIG_CHECK_LT(u, adjacency_.size());
  DSIG_CHECK_LT(v, adjacency_.size());
  DSIG_CHECK_NE(u, v);
  DSIG_CHECK_GT(weight, 0);
  const EdgeId id = static_cast<EdgeId>(edge_endpoints_.size());
  edge_endpoints_.emplace_back(u, v);
  adjacency_[u].push_back({v, weight, id, false});
  adjacency_[v].push_back({u, weight, id, false});
  ++num_live_edges_;
  return id;
}

void RoadNetwork::RemoveEdge(EdgeId edge) {
  DSIG_CHECK_LT(edge, edge_endpoints_.size());
  DSIG_CHECK(!edge_removed(edge));
  const auto [u, v] = edge_endpoints_[edge];
  adjacency_[u][AdjacencyIndexOf(u, edge)].removed = true;
  adjacency_[v][AdjacencyIndexOf(v, edge)].removed = true;
  --num_live_edges_;
}

void RoadNetwork::SetEdgeWeight(EdgeId edge, Weight weight) {
  DSIG_CHECK_LT(edge, edge_endpoints_.size());
  DSIG_CHECK(!edge_removed(edge));
  DSIG_CHECK_GT(weight, 0);
  const auto [u, v] = edge_endpoints_[edge];
  adjacency_[u][AdjacencyIndexOf(u, edge)].weight = weight;
  adjacency_[v][AdjacencyIndexOf(v, edge)].weight = weight;
}

size_t RoadNetwork::max_degree() const {
  size_t max_deg = 0;
  for (const auto& list : adjacency_) max_deg = std::max(max_deg, list.size());
  return max_deg;
}

Weight RoadNetwork::edge_weight(EdgeId edge) const {
  DSIG_CHECK_LT(edge, edge_endpoints_.size());
  const NodeId u = edge_endpoints_[edge].first;
  return adjacency_[u][AdjacencyIndexOf(u, edge)].weight;
}

bool RoadNetwork::edge_removed(EdgeId edge) const {
  DSIG_CHECK_LT(edge, edge_endpoints_.size());
  const NodeId u = edge_endpoints_[edge].first;
  return adjacency_[u][AdjacencyIndexOf(u, edge)].removed;
}

uint32_t RoadNetwork::AdjacencyIndexOf(NodeId n, EdgeId edge) const {
  DSIG_CHECK_LT(n, adjacency_.size());
  const auto& list = adjacency_[n];
  for (uint32_t i = 0; i < list.size(); ++i) {
    if (list[i].edge_id == edge) return i;
  }
  DSIG_LOG(Fatal) << "node " << n << " is not an endpoint of edge " << edge;
  return 0;
}

EdgeId RoadNetwork::FindEdge(NodeId u, NodeId v) const {
  DSIG_CHECK_LT(u, adjacency_.size());
  for (const AdjacencyEntry& entry : adjacency_[u]) {
    if (!entry.removed && entry.to == v) return entry.edge_id;
  }
  return kInvalidEdge;
}

bool RoadNetwork::IsConnected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  size_t count = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++count;
    for (const AdjacencyEntry& entry : adjacency_[n]) {
      if (entry.removed || seen[entry.to]) continue;
      seen[entry.to] = true;
      stack.push_back(entry.to);
    }
  }
  return count == adjacency_.size();
}

}  // namespace dsig
