// Synthetic road-network generators.
//
// Three families cover everything the paper evaluates on:
//  * MakeGrid       — the uniform grid of the analysis in §5.1 (every node
//                     connects to 4 neighbours, all edge weights 1).
//  * MakeRandomPlanar — the paper's synthetic network (§6): planar points
//                     connected to nearby points, random integer weights in
//                     [1, 10], node degrees following an exponential
//                     distribution with mean 4.
//  * MakeClusteredContinental — stand-in for the Digital Chart of the World
//                     network (see DESIGN.md substitutions): dense urban
//                     clusters joined by sparse long highways, giving the
//                     non-uniform density that distinguishes real road data.
//
// All generators produce connected graphs with integer-valued edge weights
// (stored as double), so shortest-path sums are exact in floating point, and
// deterministic output for a fixed seed.
#ifndef DSIG_GRAPH_GRAPH_GENERATOR_H_
#define DSIG_GRAPH_GRAPH_GENERATOR_H_

#include <cstdint>

#include "graph/road_network.h"

namespace dsig {

struct GridOptions {
  int width = 10;
  int height = 10;
  Weight edge_weight = 1;
};

// Uniform `width` x `height` grid; node (x, y) has id y * width + x.
RoadNetwork MakeGrid(const GridOptions& options);

struct RandomPlanarOptions {
  size_t num_nodes = 10000;
  uint64_t seed = 42;
  // Mean of the exponential distribution each node draws its number of
  // initiated connections from; 2 initiated edges/node yields average degree
  // about 4 (a two-road intersection), as in the paper.
  double mean_connections = 2.0;
  int min_weight = 1;
  int max_weight = 10;
};

RoadNetwork MakeRandomPlanar(const RandomPlanarOptions& options);

struct ClusteredContinentalOptions {
  size_t num_clusters = 16;
  size_t nodes_per_cluster = 1000;
  uint64_t seed = 42;
  // Local street weights.
  int min_weight = 1;
  int max_weight = 10;
  // Highways cost this many weight units per unit of Euclidean length.
  double highway_weight_per_unit = 2.0;
};

RoadNetwork MakeClusteredContinental(const ClusteredContinentalOptions& options);

}  // namespace dsig

#endif  // DSIG_GRAPH_GRAPH_GENERATOR_H_
