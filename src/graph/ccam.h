// Connectivity-Clustered Access Method (CCAM) style node ordering.
//
// The paper (§6) stores nodes, adjacency lists, and signatures with CCAM
// (Shekhar & Liu, TKDE 1997), which packs strongly connected neighbourhoods
// into common disk pages to minimise page faults during network traversals.
// We implement its core heuristic: grow clusters of `nodes_per_page` nodes by
// greedy best-first expansion over edge connectivity, then emit clusters in
// discovery order. The resulting permutation is handed to the Pager, which
// lays records out in this order.
#ifndef DSIG_GRAPH_CCAM_H_
#define DSIG_GRAPH_CCAM_H_

#include <vector>

#include "graph/road_network.h"

namespace dsig {

// Returns a permutation `order` of all nodes: order[i] = node stored in the
// i-th record slot. Nodes of one greedily grown cluster occupy consecutive
// slots. `nodes_per_cluster` is the target cluster size (the number of node
// records that fit one page); must be >= 1.
std::vector<NodeId> ComputeCcamOrder(const RoadNetwork& graph,
                                     size_t nodes_per_cluster);

// Fraction of live edges whose two endpoints land in the same cluster under
// `order` — the quality metric CCAM maximises. Useful for tests/benches.
double IntraClusterEdgeFraction(const RoadNetwork& graph,
                                const std::vector<NodeId>& order,
                                size_t nodes_per_cluster);

}  // namespace dsig

#endif  // DSIG_GRAPH_CCAM_H_
