#include "graph/spanning_tree.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <tuple>
#include <utility>

#include "graph/dijkstra.h"
#include "util/thread_pool.h"

namespace dsig {

SpanningForest::SpanningForest(const RoadNetwork* graph,
                               std::vector<NodeId> objects)
    : graph_(graph), objects_(std::move(objects)) {
  DSIG_CHECK(graph_ != nullptr);
}

void SpanningForest::Build(ThreadPool* pool) {
  num_nodes_ = graph_->num_nodes();
  const size_t slots = objects_.size() * num_nodes_;
  dist_.assign(slots, kInfiniteWeight);
  parent_.assign(slots, kInvalidNode);
  parent_edge_.assign(slots, kInvalidEdge);
  reverse_index_.assign(graph_->num_edge_slots(), {});

  // The per-object Dijkstras are independent and dominate construction time
  // (§5.2); run them on the shared pool (steal-balanced: a central object's
  // Dijkstra settles far more nodes than a peripheral one's). Each writes a
  // disjoint row-major slice; only the shared reverse index is filled
  // serially afterwards.
  if (pool == nullptr) pool = &ThreadPool::Global();
  pool->ParallelFor(objects_.size(), [&](size_t o) {
    const ShortestPathTree tree = RunDijkstra(*graph_, objects_[o]);
    for (NodeId n = 0; n < num_nodes_; ++n) {
      const size_t slot = Slot(static_cast<uint32_t>(o), n);
      dist_[slot] = tree.dist[n];
      parent_[slot] = tree.parent[n];
      parent_edge_[slot] = tree.parent_edge[n];
    }
  });
  for (uint32_t o = 0; o < objects_.size(); ++o) {
    for (NodeId n = 0; n < num_nodes_; ++n) {
      const EdgeId edge = parent_edge_[Slot(o, n)];
      if (edge != kInvalidEdge) BumpEdgeUse(edge, o, +1);
    }
  }
  built_ = true;
}

std::vector<uint32_t> SpanningForest::ObjectsUsingEdge(EdgeId edge) const {
  std::vector<uint32_t> users;
  if (edge >= reverse_index_.size()) return users;
  users.reserve(reverse_index_[edge].size());
  for (const auto& [object_index, count] : reverse_index_[edge]) {
    if (count > 0) users.push_back(object_index);
  }
  return users;
}

void SpanningForest::BumpEdgeUse(EdgeId edge, uint32_t object_index,
                                 int delta) {
  auto& users = reverse_index_[edge];
  for (auto& [obj, count] : users) {
    if (obj == object_index) {
      DSIG_CHECK_GE(static_cast<int64_t>(count) + delta, 0);
      count = static_cast<uint32_t>(static_cast<int64_t>(count) + delta);
      return;
    }
  }
  DSIG_CHECK_GT(delta, 0);
  users.push_back({object_index, static_cast<uint32_t>(delta)});
}

void SpanningForest::SetParentEdge(uint32_t object_index, NodeId n,
                                   EdgeId edge) {
  EnsureReverseIndexSize();
  const size_t slot = Slot(object_index, n);
  const EdgeId old_edge = parent_edge_[slot];
  if (old_edge == edge) return;
  parent_edge_[slot] = edge;
  if (old_edge != kInvalidEdge) BumpEdgeUse(old_edge, object_index, -1);
  if (edge != kInvalidEdge) BumpEdgeUse(edge, object_index, +1);
}

void SpanningForest::EnsureReverseIndexSize() {
  if (reverse_index_.size() < graph_->num_edge_slots()) {
    reverse_index_.resize(graph_->num_edge_slots());
  }
}

std::vector<NodeId> SpanningForest::CollectSubtree(uint32_t object_index,
                                                   NodeId root) const {
  std::vector<NodeId> subtree = {root};
  for (size_t i = 0; i < subtree.size(); ++i) {
    const NodeId u = subtree[i];
    for (const AdjacencyEntry& entry : graph_->adjacency(u)) {
      // `entry.to` is a child of u in this tree iff u is its parent *via this
      // very edge* (parallel edges make the edge check necessary). Removed
      // edges can still be tree edges right after RemoveEdge — that is
      // exactly the case the caller is repairing.
      const size_t slot = Slot(object_index, entry.to);
      if (parent_[slot] == u && parent_edge_[slot] == entry.edge_id) {
        subtree.push_back(entry.to);
      }
    }
  }
  return subtree;
}

std::vector<TreeChange> SpanningForest::OnEdgeAddedOrDecreased(EdgeId edge) {
  DSIG_CHECK(built_);
  DSIG_CHECK_EQ(num_nodes_, graph_->num_nodes())
      << "nodes were added after Build(); rebuild the forest";
  EnsureReverseIndexSize();
  const auto [ea, eb] = graph_->edge_endpoints(edge);
  const Weight w = graph_->edge_weight(edge);

  std::vector<TreeChange> changes;
  // A shorter edge can only help, so relax it in every object's tree and
  // propagate improvements (paper §5.4.1). Only decreases flow, so a simple
  // label-correcting queue terminates.
  for (uint32_t o = 0; o < objects_.size(); ++o) {
    std::deque<NodeId> queue;
    const auto relax = [&](NodeId from, NodeId to, Weight weight,
                           EdgeId via) {
      const size_t from_slot = Slot(o, from);
      const size_t to_slot = Slot(o, to);
      if (dist_[from_slot] == kInfiniteWeight) return;
      const Weight nd = dist_[from_slot] + weight;
      if (nd < dist_[to_slot]) {
        dist_[to_slot] = nd;
        parent_[to_slot] = from;
        SetParentEdge(o, to, via);
        changes.push_back({o, to});
        queue.push_back(to);
      }
    };
    relax(ea, eb, w, edge);
    relax(eb, ea, w, edge);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const AdjacencyEntry& entry : graph_->adjacency(u)) {
        if (entry.removed) continue;
        relax(u, entry.to, entry.weight, entry.edge_id);
      }
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const TreeChange& x, const TreeChange& y) {
              return std::tie(x.object_index, x.node) <
                     std::tie(y.object_index, y.node);
            });
  changes.erase(std::unique(changes.begin(), changes.end(),
                            [](const TreeChange& x, const TreeChange& y) {
                              return x.object_index == y.object_index &&
                                     x.node == y.node;
                            }),
                changes.end());
  return changes;
}

std::vector<TreeChange> SpanningForest::OnEdgeIncreasedOrRemoved(EdgeId edge) {
  DSIG_CHECK(built_);
  DSIG_CHECK_EQ(num_nodes_, graph_->num_nodes())
      << "nodes were added after Build(); rebuild the forest";
  EnsureReverseIndexSize();
  // Only trees routing through this edge are affected (reverse index, §5.4.2).
  const std::vector<uint32_t> affected = ObjectsUsingEdge(edge);

  std::vector<TreeChange> changes;
  for (const uint32_t o : affected) {
    const auto [ea, eb] = graph_->edge_endpoints(edge);
    // The child endpoint is the one whose parent edge is this edge.
    NodeId child = kInvalidNode;
    if (parent_edge_[Slot(o, ea)] == edge) child = ea;
    if (parent_edge_[Slot(o, eb)] == edge) child = eb;
    if (child == kInvalidNode) continue;  // stale membership; nothing to do

    // Invalidate the whole subtree hanging below the weakened edge, then
    // repair it with a Dijkstra seeded from the frontier of intact nodes.
    const std::vector<NodeId> subtree = CollectSubtree(o, child);
    std::vector<bool> in_subtree(num_nodes_, false);
    std::vector<Weight> old_dist(subtree.size());
    std::vector<NodeId> old_parent(subtree.size());
    for (size_t i = 0; i < subtree.size(); ++i) {
      in_subtree[subtree[i]] = true;
      old_dist[i] = dist_[Slot(o, subtree[i])];
      old_parent[i] = parent_[Slot(o, subtree[i])];
      dist_[Slot(o, subtree[i])] = kInfiniteWeight;
    }

    using Entry = std::pair<Weight, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (const NodeId s : subtree) {
      for (const AdjacencyEntry& entry : graph_->adjacency(s)) {
        if (entry.removed || in_subtree[entry.to]) continue;
        const Weight base = dist_[Slot(o, entry.to)];
        if (base == kInfiniteWeight) continue;
        const Weight nd = base + entry.weight;
        if (nd < dist_[Slot(o, s)]) {
          dist_[Slot(o, s)] = nd;
          parent_[Slot(o, s)] = entry.to;
          SetParentEdge(o, s, entry.edge_id);
          heap.push({nd, s});
        }
      }
    }
    std::vector<bool> settled(num_nodes_, false);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (settled[u] || d > dist_[Slot(o, u)]) continue;
      settled[u] = true;
      for (const AdjacencyEntry& entry : graph_->adjacency(u)) {
        if (entry.removed || !in_subtree[entry.to]) continue;
        const Weight nd = d + entry.weight;
        if (nd < dist_[Slot(o, entry.to)]) {
          dist_[Slot(o, entry.to)] = nd;
          parent_[Slot(o, entry.to)] = u;
          SetParentEdge(o, entry.to, entry.edge_id);
          heap.push({nd, entry.to});
        }
      }
    }
    for (size_t i = 0; i < subtree.size(); ++i) {
      const NodeId s = subtree[i];
      if (dist_[Slot(o, s)] == kInfiniteWeight) {
        // Disconnected by the removal.
        parent_[Slot(o, s)] = kInvalidNode;
        SetParentEdge(o, s, kInvalidEdge);
        changes.push_back({o, s});
      } else if (dist_[Slot(o, s)] != old_dist[i] ||
                 parent_[Slot(o, s)] != old_parent[i]) {
        // Distance changed, or the route (and hence the backtracking link)
        // moved even though the distance survived.
        changes.push_back({o, s});
      }
    }
  }
  return changes;
}

}  // namespace dsig
