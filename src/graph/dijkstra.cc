#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/deadline.h"

namespace dsig {
namespace {

// (tentative distance, node); min-heap with lazy deletion.
using QueueEntry = std::pair<Weight, NodeId>;
using MinHeap =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

ShortestPathTree MakeTree(size_t n) {
  ShortestPathTree tree;
  tree.dist.assign(n, kInfiniteWeight);
  tree.parent.assign(n, kInvalidNode);
  tree.parent_edge.assign(n, kInvalidEdge);
  return tree;
}

// Core loop shared by all variants. `radius` bounds settling (use
// kInfiniteWeight for unbounded); `target` enables early exit (kInvalidNode
// for none); `multi_source` fills tree->owner.
void Run(const RoadNetwork& graph, const std::vector<NodeId>& sources,
         Weight radius, NodeId target, bool multi_source,
         ShortestPathTree* tree) {
  const size_t n = graph.num_nodes();
  if (multi_source) tree->owner.assign(n, kInvalidNode);
  std::vector<bool> settled(n, false);
  MinHeap heap;
  for (const NodeId s : sources) {
    DSIG_CHECK_LT(s, n);
    tree->dist[s] = 0;
    if (multi_source) tree->owner[s] = s;
    heap.push({0, s});
  }
  size_t settle_count = 0;
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u] || d > tree->dist[u]) continue;  // stale entry
    if (d > radius) break;  // all remaining entries are at least this far
    // Bounded runs honour the ambient request deadline: stopping early only
    // shrinks the settled ball, and the cleanup below marks everything
    // unsettled as unreachable, so callers see a well-formed (if smaller)
    // partial result. Unbounded runs stay deadline-free — their callers
    // (construction, baselines) need the complete tree.
    if (radius != kInfiniteWeight && (++settle_count & 63u) == 0 &&
        DeadlineExpired()) {
      break;
    }
    settled[u] = true;
    tree->settle_order.push_back(u);
    if (u == target) return;
    for (const AdjacencyEntry& entry : graph.adjacency(u)) {
      if (entry.removed) continue;
      const Weight nd = d + entry.weight;
      if (nd < tree->dist[entry.to]) {
        tree->dist[entry.to] = nd;
        tree->parent[entry.to] = u;
        tree->parent_edge[entry.to] = entry.edge_id;
        if (multi_source) tree->owner[entry.to] = tree->owner[u];
        heap.push({nd, entry.to});
      }
    }
  }
  // Bounded runs leave unsettled nodes marked unreachable so callers cannot
  // mistake a tentative distance for a final one.
  if (radius != kInfiniteWeight) {
    for (size_t v = 0; v < n; ++v) {
      if (!settled[v]) {
        tree->dist[v] = kInfiniteWeight;
        tree->parent[v] = kInvalidNode;
        tree->parent_edge[v] = kInvalidEdge;
        if (multi_source) tree->owner[v] = kInvalidNode;
      }
    }
  }
}

}  // namespace

ShortestPathTree RunDijkstra(const RoadNetwork& graph, NodeId source) {
  ShortestPathTree tree = MakeTree(graph.num_nodes());
  Run(graph, {source}, kInfiniteWeight, kInvalidNode, /*multi_source=*/false,
      &tree);
  return tree;
}

ShortestPathTree RunDijkstraBounded(const RoadNetwork& graph, NodeId source,
                                    Weight radius) {
  ShortestPathTree tree = MakeTree(graph.num_nodes());
  Run(graph, {source}, radius, kInvalidNode, /*multi_source=*/false, &tree);
  return tree;
}

ShortestPathTree RunDijkstraMultiSource(const RoadNetwork& graph,
                                        const std::vector<NodeId>& sources) {
  ShortestPathTree tree = MakeTree(graph.num_nodes());
  Run(graph, sources, kInfiniteWeight, kInvalidNode, /*multi_source=*/true,
      &tree);
  return tree;
}

Weight DijkstraDistance(const RoadNetwork& graph, NodeId source,
                        NodeId target) {
  DSIG_CHECK_LT(target, graph.num_nodes());
  ShortestPathTree tree = MakeTree(graph.num_nodes());
  Run(graph, {source}, kInfiniteWeight, target, /*multi_source=*/false, &tree);
  return tree.dist[target];
}

std::vector<NodeId> ReconstructPath(const ShortestPathTree& tree,
                                    NodeId source, NodeId target) {
  std::vector<NodeId> path;
  if (tree.dist[target] == kInfiniteWeight) return path;
  for (NodeId v = target; v != kInvalidNode; v = tree.parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  DSIG_CHECK_EQ(path.back(), source);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dsig
