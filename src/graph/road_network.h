// Road-network graph model (paper §1): a simple undirected weighted graph
// where vertices are road junctions, edges are road segments, and edge
// weights are travel distances. Dataset objects (hospitals, restaurants, …)
// live on nodes.
//
// Two structural guarantees matter for the distance-signature index:
//   * Adjacency order is stable: a signature's backtracking link is the
//     *position* of the next hop inside the node's adjacency list (§3.1), so
//     positions must never shift. Edge removal therefore tombstones the slot
//     instead of erasing it.
//   * Every undirected edge has a dense EdgeId shared by both directions,
//     which the update machinery (§5.4) uses for its reverse edge→object
//     index.
#ifndef DSIG_GRAPH_ROAD_NETWORK_H_
#define DSIG_GRAPH_ROAD_NETWORK_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace dsig {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using ObjectId = uint32_t;
using Weight = double;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr ObjectId kInvalidObject =
    std::numeric_limits<ObjectId>::max();
inline constexpr Weight kInfiniteWeight =
    std::numeric_limits<Weight>::infinity();

// 2-D planar position of a junction. Used by the generators, the NVP R-tree,
// and Euclidean heuristics; network distances never depend on it.
struct Point {
  double x = 0;
  double y = 0;
};

// One directed half of an undirected road segment, stored in the adjacency
// list of its tail node.
struct AdjacencyEntry {
  NodeId to = kInvalidNode;
  Weight weight = 0;
  EdgeId edge_id = kInvalidEdge;
  bool removed = false;  // tombstone: slot kept so adjacency indices are stable
};

class RoadNetwork {
 public:
  RoadNetwork() = default;

  // Movable but not copyable: indexes hold node/edge ids into one instance.
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;
  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;

  // Adds an isolated junction at `position` and returns its id.
  NodeId AddNode(Point position);

  // Adds an undirected road segment of positive weight between distinct
  // existing nodes; returns its EdgeId. Parallel edges are permitted (real
  // road data contains them); self-loops are not.
  EdgeId AddEdge(NodeId u, NodeId v, Weight weight);

  // Tombstones the edge in both adjacency lists. The EdgeId stays allocated.
  void RemoveEdge(EdgeId edge);

  // Updates the weight of a live edge (both directions).
  void SetEdgeWeight(EdgeId edge, Weight weight);

  size_t num_nodes() const { return adjacency_.size(); }
  // Live (non-tombstoned) undirected edges.
  size_t num_edges() const { return num_live_edges_; }
  // All EdgeIds ever allocated, live or removed.
  size_t num_edge_slots() const { return edge_endpoints_.size(); }

  const Point& position(NodeId n) const { return positions_[n]; }

  // Repositions a junction (e.g., when coordinates arrive in a separate
  // file, as in the DIMACS format). Never affects network distances.
  void SetPosition(NodeId n, Point position) {
    DSIG_CHECK_LT(n, positions_.size());
    positions_[n] = position;
  }

  // Full adjacency list of `n`, including tombstones; callers iterating for
  // graph traversal must skip entries with `removed == true`.
  const std::vector<AdjacencyEntry>& adjacency(NodeId n) const {
    return adjacency_[n];
  }

  // Number of adjacency slots of `n` (including tombstones) — the paper's
  // "degree" bound R used to size backtracking links.
  size_t degree(NodeId n) const { return adjacency_[n].size(); }

  // Largest adjacency slot count over all nodes (>= 1 when any edge exists).
  size_t max_degree() const;

  // Endpoints of `edge` (valid also for removed edges).
  std::pair<NodeId, NodeId> edge_endpoints(EdgeId edge) const {
    return edge_endpoints_[edge];
  }

  Weight edge_weight(EdgeId edge) const;
  bool edge_removed(EdgeId edge) const;

  // Position of `edge` within `n`'s adjacency list; `n` must be an endpoint.
  uint32_t AdjacencyIndexOf(NodeId n, EdgeId edge) const;

  // First live edge between u and v, or kInvalidEdge.
  EdgeId FindEdge(NodeId u, NodeId v) const;

  // True when every node can reach node 0 through live edges.
  bool IsConnected() const;

 private:
  std::vector<std::vector<AdjacencyEntry>> adjacency_;
  std::vector<Point> positions_;
  std::vector<std::pair<NodeId, NodeId>> edge_endpoints_;
  size_t num_live_edges_ = 0;
};

}  // namespace dsig

#endif  // DSIG_GRAPH_ROAD_NETWORK_H_
