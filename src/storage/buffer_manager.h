// LRU buffer pool over logical (file, page) pairs.
//
// All index structures share one pool per experiment, mirroring a DBMS
// buffer. Access() records a logical access always and a physical access on
// a miss; benches report both (the paper's "page accesses" are physical
// reads under a modest buffer).
#ifndef DSIG_STORAGE_BUFFER_MANAGER_H_
#define DSIG_STORAGE_BUFFER_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.h"
#include "storage/page.h"

namespace dsig {

// X(field, comment) for every stat, in declaration order. Aggregate
// initialization in tests follows this order, so new fields go at the END
// (same convention as DSIG_OP_COUNTER_FIELDS).
#define DSIG_BUFFER_STAT_FIELDS(X)                                          \
  X(logical_accesses, "page touches, hit or miss")                          \
  X(physical_accesses, "misses: reads that went to storage")                \
  /* Physical reads the fault injector failed (see SetReadFaultInjector).   \
     Failed pages are not cached, so a retry re-reads them. */              \
  X(failed_reads, "physical reads failed by the fault injector")            \
  X(evictions, "pages dropped from a full pool (LRU victim)")

struct BufferStats {
#define DSIG_BUFFER_STAT_DECLARE(field, comment) uint64_t field = 0;
  DSIG_BUFFER_STAT_FIELDS(DSIG_BUFFER_STAT_DECLARE)
#undef DSIG_BUFFER_STAT_DECLARE

  BufferStats operator-(const BufferStats& other) const {
    BufferStats delta;
#define DSIG_BUFFER_STAT_SUB(field, comment) delta.field = field - other.field;
    DSIG_BUFFER_STAT_FIELDS(DSIG_BUFFER_STAT_SUB)
#undef DSIG_BUFFER_STAT_SUB
    return delta;
  }

  // Visits (name, value) for every stat in declaration order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
#define DSIG_BUFFER_STAT_VISIT(field, comment) fn(#field, field);
    DSIG_BUFFER_STAT_FIELDS(DSIG_BUFFER_STAT_VISIT)
#undef DSIG_BUFFER_STAT_VISIT
  }
};

class BufferManager {
 public:
  // `capacity_pages` = 0 disables caching entirely (every access is a miss).
  // Hits/misses/evictions also charge the process-wide BufferPoolTotals
  // shared across all pools (published to the registry as "buffer.*" via
  // PublishBufferPoolMetrics(), see obs/metrics.h).
  explicit BufferManager(size_t capacity_pages);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  // Touches one page; returns true on a buffer hit. Thread-safe: batch
  // query workers share one pool, so the LRU list and stats are guarded by
  // an internal mutex (one short critical section per page touch).
  bool Access(FileId file, PageId page);

  // Allocates a fresh file-id namespace for a new paged structure.
  FileId RegisterFile() { return next_file_++; }

  // Measurement APIs: call only while no other thread is in Access() — the
  // returned reference aliases state the mutex guards.
  const BufferStats& stats() const { return stats_; }

  // Clears counters but keeps buffer contents (for steady-state measurement).
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = {};
  }

  // Drops all cached pages and counters (cold-cache measurement).
  void Clear();

  size_t capacity() const { return capacity_; }

  // Fault injection for resilience tests: `injector(file, page)` is consulted
  // on every physical read (i.e. buffer miss); returning true makes that read
  // fail — the access is counted in `failed_reads` and the page is NOT
  // cached, exactly as a pool would behave when the disk read errors out.
  // Pass nullptr to disarm. Hits are unaffected (the page is already in
  // memory).
  using ReadFaultInjector = std::function<bool(FileId, PageId)>;
  void SetReadFaultInjector(ReadFaultInjector injector) {
    read_fault_injector_ = std::move(injector);
  }

 private:
  // Key packs (file, page); files are small and pages < 2^40 in practice.
  static uint64_t Key(FileId file, PageId page) {
    return (static_cast<uint64_t>(file) << 40) | page;
  }

  size_t capacity_;
  mutable std::mutex mu_;  // guards stats_, lru_, table_
  BufferStats stats_;
  obs::BufferPoolMetrics* metrics_;  // process-wide gauges, never null
  obs::BufferPoolTotals* totals_;    // process-wide totals, never null
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> table_;
  FileId next_file_ = 0;
  ReadFaultInjector read_fault_injector_;
};

}  // namespace dsig

#endif  // DSIG_STORAGE_BUFFER_MANAGER_H_
