// Record-to-page layout and access charging.
//
// PageLayout packs variable-size records (adjacency lists, signature rows,
// full-index rows, …) into 4 KB pages following a storage order (typically
// the CCAM order). A record that fits the remainder of the current page is
// placed there; otherwise it starts on a fresh page; records larger than a
// page span consecutive pages. This mirrors the paper's paged storage schema
// (§3.1) including the greedy grouping of signatures for paging.
//
// PagedStore couples a layout with a BufferManager file so algorithms can
// charge accesses at three granularities: a whole record, the single page
// holding one bit offset within a record, or a page range.
#ifndef DSIG_STORAGE_PAGER_H_
#define DSIG_STORAGE_PAGER_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "util/logging.h"

namespace dsig {

class PageLayout {
 public:
  PageLayout() = default;

  // `record_bits[r]` = size of record r in bits. `order` is a permutation of
  // record ids giving the storage order. Zero-size records are legal (they
  // share the position of the next record).
  PageLayout(const std::vector<uint64_t>& record_bits,
             const std::vector<uint32_t>& order);

  size_t num_records() const { return start_bit_.size(); }

  // Absolute bit address where record r starts.
  uint64_t start_bit(uint32_t record) const {
    DSIG_CHECK_LT(record, start_bit_.size());
    return start_bit_[record];
  }

  uint64_t record_bits(uint32_t record) const {
    DSIG_CHECK_LT(record, start_bit_.size());
    return record_bits_[record];
  }

  PageId FirstPage(uint32_t record) const {
    return start_bit(record) / kPageSizeBits;
  }

  PageId LastPage(uint32_t record) const;

  // Page containing the bit at `bit_offset` within record r.
  PageId PageAt(uint32_t record, uint64_t bit_offset) const;

  uint64_t num_pages() const { return num_pages_; }
  uint64_t total_bytes() const { return num_pages_ * kPageSizeBytes; }
  // Sum of record payloads, ignoring page-boundary padding.
  uint64_t payload_bytes() const { return (payload_bits_ + 7) / 8; }

 private:
  std::vector<uint64_t> start_bit_;
  std::vector<uint64_t> record_bits_;
  uint64_t num_pages_ = 0;
  uint64_t payload_bits_ = 0;
};

// A paged structure registered with a shared buffer pool.
class PagedStore {
 public:
  PagedStore() = default;
  PagedStore(PageLayout layout, BufferManager* buffer)
      : layout_(std::move(layout)),
        buffer_(buffer),
        file_(buffer ? buffer->RegisterFile() : 0) {}

  const PageLayout& layout() const { return layout_; }

  // Charges every page the record spans (sequential scan of the record).
  void TouchRecord(uint32_t record) const;

  // Charges only the page holding `bit_offset` within the record (random
  // access to one component).
  void TouchRecordAt(uint32_t record, uint64_t bit_offset) const;

  // Charges every page overlapping bits [from_bit, to_bit) of the record
  // (sequential scan of part of a record, e.g. the signature portion of a
  // merged adjacency+signature record).
  void TouchRecordBits(uint32_t record, uint64_t from_bit,
                       uint64_t to_bit) const;

 private:
  PageLayout layout_;
  BufferManager* buffer_ = nullptr;
  FileId file_ = 0;
};

}  // namespace dsig

#endif  // DSIG_STORAGE_PAGER_H_
