#include "storage/buffer_manager.h"

#include "obs/trace.h"

namespace dsig {

BufferManager::BufferManager(size_t capacity_pages)
    : capacity_(capacity_pages),
      metrics_(&obs::GlobalBufferPoolMetrics()),
      totals_(&obs::GlobalBufferPoolTotals()) {
  // Last-constructed pool wins; experiments run one pool at a time.
  metrics_->capacity_pages->Set(static_cast<double>(capacity_pages));
}

bool BufferManager::Access(FileId file, PageId page) {
  const obs::Span span(obs::Phase::kBufferIo);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.logical_accesses;
  if (capacity_ == 0) {
    ++stats_.physical_accesses;
    totals_->misses.fetch_add(1, std::memory_order_relaxed);
    if (read_fault_injector_ && read_fault_injector_(file, page)) {
      ++stats_.failed_reads;
      totals_->failed_reads.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  const uint64_t key = Key(file, page);
  const auto it = table_.find(key);
  if (it != table_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    totals_->hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  ++stats_.physical_accesses;
  totals_->misses.fetch_add(1, std::memory_order_relaxed);
  if (read_fault_injector_ && read_fault_injector_(file, page)) {
    // The read never produced a page, so nothing enters the pool.
    ++stats_.failed_reads;
    totals_->failed_reads.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.push_front(key);
  table_[key] = lru_.begin();
  if (table_.size() > capacity_) {
    table_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    totals_->evictions.fetch_add(1, std::memory_order_relaxed);
  }
  metrics_->cached_pages->Set(static_cast<double>(table_.size()));
  return false;
}

void BufferManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = {};
  lru_.clear();
  table_.clear();
  metrics_->cached_pages->Set(0.0);
}

}  // namespace dsig
