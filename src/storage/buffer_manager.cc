#include "storage/buffer_manager.h"

namespace dsig {

bool BufferManager::Access(FileId file, PageId page) {
  ++stats_.logical_accesses;
  if (capacity_ == 0) {
    ++stats_.physical_accesses;
    if (read_fault_injector_ && read_fault_injector_(file, page)) {
      ++stats_.failed_reads;
    }
    return false;
  }
  const uint64_t key = Key(file, page);
  const auto it = table_.find(key);
  if (it != table_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++stats_.physical_accesses;
  if (read_fault_injector_ && read_fault_injector_(file, page)) {
    // The read never produced a page, so nothing enters the pool.
    ++stats_.failed_reads;
    return false;
  }
  lru_.push_front(key);
  table_[key] = lru_.begin();
  if (table_.size() > capacity_) {
    table_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

void BufferManager::Clear() {
  stats_ = {};
  lru_.clear();
  table_.clear();
}

}  // namespace dsig
