#include "storage/pager.h"

namespace dsig {

PageLayout::PageLayout(const std::vector<uint64_t>& record_bits,
                       const std::vector<uint32_t>& order) {
  DSIG_CHECK_EQ(record_bits.size(), order.size());
  const size_t n = record_bits.size();
  start_bit_.assign(n, 0);
  record_bits_ = record_bits;
  uint64_t cursor = 0;
  for (const uint32_t record : order) {
    DSIG_CHECK_LT(record, n);
    const uint64_t bits = record_bits[record];
    payload_bits_ += bits;
    const uint64_t used_in_page = cursor % kPageSizeBits;
    // Start a fresh page when the record would cross a boundary it could
    // have avoided (records larger than a page inevitably span pages).
    if (bits <= kPageSizeBits && used_in_page + bits > kPageSizeBits) {
      cursor += kPageSizeBits - used_in_page;
    }
    start_bit_[record] = cursor;
    cursor += bits;
  }
  num_pages_ = (cursor + kPageSizeBits - 1) / kPageSizeBits;
  if (n > 0 && num_pages_ == 0) num_pages_ = 1;
}

PageId PageLayout::LastPage(uint32_t record) const {
  const uint64_t bits = record_bits_[record];
  const uint64_t end_bit = start_bit_[record] + (bits == 0 ? 0 : bits - 1);
  return end_bit / kPageSizeBits;
}

PageId PageLayout::PageAt(uint32_t record, uint64_t bit_offset) const {
  DSIG_CHECK_LE(bit_offset, record_bits_[record]);
  // Clamp so "one past the end" still charges the last page.
  const uint64_t bits = record_bits_[record];
  if (bits > 0 && bit_offset >= bits) bit_offset = bits - 1;
  return (start_bit_[record] + bit_offset) / kPageSizeBits;
}

void PagedStore::TouchRecord(uint32_t record) const {
  if (buffer_ == nullptr) return;
  const PageId first = layout_.FirstPage(record);
  const PageId last = layout_.LastPage(record);
  for (PageId p = first; p <= last; ++p) buffer_->Access(file_, p);
}

void PagedStore::TouchRecordAt(uint32_t record, uint64_t bit_offset) const {
  if (buffer_ == nullptr) return;
  buffer_->Access(file_, layout_.PageAt(record, bit_offset));
}

void PagedStore::TouchRecordBits(uint32_t record, uint64_t from_bit,
                                 uint64_t to_bit) const {
  if (buffer_ == nullptr) return;
  if (to_bit <= from_bit) {
    buffer_->Access(file_, layout_.PageAt(record, from_bit));
    return;
  }
  const PageId first = layout_.PageAt(record, from_bit);
  const PageId last = layout_.PageAt(record, to_bit - 1);
  for (PageId p = first; p <= last; ++p) buffer_->Access(file_, p);
}

}  // namespace dsig
