// Paged storage of the road network's adjacency lists.
//
// Every index in the evaluation (signature, full, NVD, INE) traverses the
// same CCAM-ordered adjacency file; this class owns its layout and charges
// page accesses to the shared buffer pool. An adjacency record holds a
// 16-bit entry count plus, per edge slot, the neighbour id (32), the weight
// (32, fixed point), and the edge id (32) — matching a compact on-disk
// format. Per the paper's storage schema (Fig 3.1) the record also carries a
// 48-bit pointer to the node's signature so signatures are randomly
// accessible from the adjacency file.
#ifndef DSIG_STORAGE_NETWORK_STORE_H_
#define DSIG_STORAGE_NETWORK_STORE_H_

#include <vector>

#include "graph/road_network.h"
#include "storage/pager.h"

namespace dsig {

class NetworkStore {
 public:
  NetworkStore() = default;

  // `order` is the storage (CCAM) order; `buffer` may be null to disable
  // charging (pure in-memory runs).
  NetworkStore(const RoadNetwork& graph, const std::vector<NodeId>& order,
               BufferManager* buffer);

  // Charges the page(s) holding node `n`'s adjacency record.
  void TouchNode(NodeId n) const { store_.TouchRecord(n); }

  uint64_t num_pages() const { return store_.layout().num_pages(); }
  uint64_t total_bytes() const { return store_.layout().total_bytes(); }

 private:
  PagedStore store_;
};

// Record size in bits of node `n`'s adjacency list.
uint64_t AdjacencyRecordBits(const RoadNetwork& graph, NodeId n);

}  // namespace dsig

#endif  // DSIG_STORAGE_NETWORK_STORE_H_
