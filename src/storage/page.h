// Disk-page cost model constants.
//
// The evaluation counts 4 KB disk-page accesses (paper §6: "The page size was
// set to 4K bytes"). Index structures in this repository live in memory but
// are laid out into logical pages so every access is charged like a disk
// access; see BufferManager and PageLayout.
#ifndef DSIG_STORAGE_PAGE_H_
#define DSIG_STORAGE_PAGE_H_

#include <cstdint>

namespace dsig {

using PageId = uint64_t;
using FileId = uint32_t;

inline constexpr uint64_t kPageSizeBytes = 4096;
inline constexpr uint64_t kPageSizeBits = kPageSizeBytes * 8;

}  // namespace dsig

#endif  // DSIG_STORAGE_PAGE_H_
