#include "storage/network_store.h"

namespace dsig {

uint64_t AdjacencyRecordBits(const RoadNetwork& graph, NodeId n) {
  // 16-bit count + 48-bit signature pointer + 96 bits per adjacency slot.
  return 16 + 48 + 96 * static_cast<uint64_t>(graph.degree(n));
}

NetworkStore::NetworkStore(const RoadNetwork& graph,
                           const std::vector<NodeId>& order,
                           BufferManager* buffer) {
  std::vector<uint64_t> record_bits(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    record_bits[n] = AdjacencyRecordBits(graph, n);
  }
  store_ = PagedStore(PageLayout(record_bits, order), buffer);
}

}  // namespace dsig
