// Wall-clock timer used by the benchmark harnesses.
#ifndef DSIG_UTIL_TIMER_H_
#define DSIG_UTIL_TIMER_H_

#include <chrono>

namespace dsig {

// Measures elapsed wall time since construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dsig

#endif  // DSIG_UTIL_TIMER_H_
