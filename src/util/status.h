// Recoverable error propagation for untrusted inputs (persistence, tools).
//
// The library's internal invariants stay fatal (DSIG_CHECK, logging.h): a
// violated invariant means the program is wrong. Errors caused by the outside
// world — a truncated index file, a full disk, a bit-flipped page — are not
// program bugs and must never abort a serving process, so the I/O layer
// reports them as values: `Status` for operations without a result,
// `StatusOr<T>` for operations that produce one. No exceptions (DESIGN.md).
//
// Typical use:
//
//   StatusOr<std::unique_ptr<RoadNetwork>> g = LoadRoadNetwork(path);
//   if (!g.ok()) { DSIG_LOG(Error) << g.status(); return; }
//   Use(*g.value());
#ifndef DSIG_UTIL_STATUS_H_
#define DSIG_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/logging.h"

namespace dsig {

enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,          // the named resource does not exist
  kInvalidArgument = 2,   // the caller passed something unusable
  kIoError = 3,           // the operating system failed us (disk full, EIO)
  kCorruption = 4,        // the data exists but fails validation
  kFailedPrecondition = 5,  // the operation does not apply to this state
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // Default is success, so `Status s; ... return s;` composes naturally.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CORRUPTION: node section checksum mismatch".
  std::string ToString() const;

  explicit operator bool() const { return ok(); }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

// A Status or a value. Accessing the value of a failed StatusOr is a checked
// error (programmer bug), matching the library's fail-fast invariant style.
template <typename T>
class StatusOr {
 public:
  // Implicit construction from both arms keeps call sites terse:
  //   if (...) return Status::Corruption("...");
  //   return value;
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DSIG_CHECK(!status_.ok()) << "StatusOr built from OK status needs a value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DSIG_CHECK(ok()) << "value() on failed StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DSIG_CHECK(ok()) << "value() on failed StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DSIG_CHECK(ok()) << "value() on failed StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  explicit operator bool() const { return ok(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Early-return plumbing for Status-returning functions.
#define DSIG_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::dsig::Status dsig_status_tmp_ = (expr);        \
    if (!dsig_status_tmp_.ok()) return dsig_status_tmp_; \
  } while (0)

}  // namespace dsig

#endif  // DSIG_UTIL_STATUS_H_
