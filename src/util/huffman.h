// Generic Huffman coding.
//
// The paper's "reverse zero padding" category code (§5.2) is a special case
// of a Huffman code; this module provides the general construction so tests
// and benches can verify the optimality claim of Theorem 5.1 (reverse zero
// padding matches the Huffman average code length whenever c > 3/2) and so
// the index can fall back to a true Huffman code for category distributions
// that violate the theorem's premise.
#ifndef DSIG_UTIL_HUFFMAN_H_
#define DSIG_UTIL_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "util/bitstream.h"

namespace dsig {

// A fully built prefix code over symbols 0..num_symbols-1.
class HuffmanCode {
 public:
  // Builds an optimal prefix code for the given symbol frequencies.
  // Zero-frequency symbols still receive a (long) code so that every symbol
  // remains encodable. `frequencies` must be non-empty.
  static HuffmanCode FromFrequencies(const std::vector<uint64_t>& frequencies);

  // Builds the trivial fixed-length binary code of ceil(log2(num_symbols))
  // bits per symbol (at least 1) — the "raw" signature encoding the paper
  // compares against.
  static HuffmanCode FixedLength(int num_symbols);

  // Builds the paper's reverse-zero-padding code over `num_symbols`
  // categories: the last category is "1", each earlier category prepends a
  // "0" (so category i has length num_symbols - i, category 0 shares length
  // num_symbols - 1 with category 1 by dropping the redundant final bit —
  // exactly the code produced by Huffman's algorithm on a distribution where
  // each category outweighs the sum of all earlier ones).
  static HuffmanCode ReverseZeroPadding(int num_symbols);

  // Reconstructs a code from its parts (e.g. deserialization). The parts
  // must form a prefix code; violations are fatal.
  static HuffmanCode FromParts(std::vector<int> lengths,
                               std::vector<uint64_t> codes);

  // Validation gate for untrusted parts (e.g. a possibly-corrupt index
  // file): true iff FromParts would accept them — non-empty, matching sizes,
  // every length in [1, 64], no code bits beyond its length, and prefix-free.
  static bool PartsAreValid(const std::vector<int>& lengths,
                            const std::vector<uint64_t>& codes);

  int num_symbols() const { return static_cast<int>(lengths_.size()); }

  // Code length, in bits, of `symbol`.
  int length(int symbol) const { return lengths_[symbol]; }

  // Code bits of `symbol`, emitted LSB-first.
  uint64_t code(int symbol) const { return codes_[symbol]; }

  // Expected code length under the given frequency distribution.
  double AverageLength(const std::vector<uint64_t>& frequencies) const;

  void Encode(int symbol, BitWriter* writer) const;

  // Decodes one symbol. Codes of up to kDecodeTableBits bits resolve in a
  // single table lookup (inline — this is the per-component hot path of
  // every signature decode); longer codes fall back to a unary word-scan
  // (for reverse-zero-padding-shaped codes) or the bit-at-a-time trie.
  // Aborts on a truncated or prefix-less stream, like the bit-at-a-time
  // decoder did.
  int Decode(BitReader* reader) const {
    if (!table_.empty()) {
      const DecodeSlot slot = table_[reader->PeekBits(kDecodeTableBits)];
      if (slot.length != 0) {
        // Skip() is bounds-checked, so a code truncated by the end of the
        // stream still aborts — exactly like the bit-at-a-time walk did.
        reader->Skip(slot.length);
        return slot.symbol;
      }
    }
    return DecodeLongChecked(reader);
  }

  // Non-aborting decode for untrusted bitstreams: false when the stream ends
  // mid-code or the bits follow no symbol's prefix; the reader position is
  // unspecified afterwards.
  bool TryDecode(BitReader* reader, int* symbol) const {
    if (!table_.empty()) {
      const DecodeSlot slot = table_[reader->PeekBits(kDecodeTableBits)];
      if (slot.length != 0) {
        // PeekBits zero-pads past the end, so the matched code may extend
        // beyond the stream: that is a truncated code, not a decode.
        if (reader->position() + slot.length > reader->size_bits()) {
          return false;
        }
        reader->Skip(slot.length);
        *symbol = slot.symbol;
        return true;
      }
    }
    return DecodeLong(reader, symbol);
  }

  // Width of the prefix decode-table window: every code of at most this many
  // bits decodes in one table hit. Reverse-zero-padding codes over the
  // paper's typical 7-12 categories fit entirely.
  static constexpr int kDecodeTableBits = 11;

  // Window-level decode for callers that batch several fields into one
  // peeked word (see SignatureCodec): decodes a symbol from the low bits of
  // `window` (LSB-first stream bits, zero-padded past the stream's end) and
  // returns its code length, or 0 when the code is longer than the table
  // window (or the table is absent) and the caller must fall back to
  // Decode()/TryDecode(). The caller is responsible for checking that the
  // returned length does not run past the end of its stream.
  int DecodeWindow(uint64_t window, int* symbol) const {
    if (table_.empty()) return 0;
    const DecodeSlot slot =
        table_[window & ((uint64_t{1} << kDecodeTableBits) - 1)];
    *symbol = slot.symbol;
    return slot.length;
  }

 private:
  HuffmanCode(std::vector<int> lengths, std::vector<uint64_t> codes);

  // One slot per kDecodeTableBits-bit window. length == 0 marks a window
  // whose code is longer than the table covers (fall back to trie/unary).
  struct DecodeSlot {
    uint16_t symbol;
    uint8_t length;
  };

  // Decoding walks a flat binary trie; nodes_[i] = {child0, child1} or a
  // leaf marker encoding (-1 - symbol).
  void BuildDecodeTrie();
  // Fills table_ (when the alphabet fits uint16 symbols) and detects the
  // reverse-zero-padding shape for the long-code unary fast path.
  void BuildDecodeTable();

  // Slow path shared by Decode/TryDecode for codes longer than the table
  // window: trie walk, or a word-level zero-scan when rzp_shaped_.
  bool DecodeLong(BitReader* reader, int* symbol) const;
  // DecodeLong for the trusting Decode(): aborts instead of returning false.
  int DecodeLongChecked(BitReader* reader) const;

  std::vector<int> lengths_;
  std::vector<uint64_t> codes_;  // bits emitted LSB-first
  std::vector<std::pair<int32_t, int32_t>> trie_;
  std::vector<DecodeSlot> table_;
  bool rzp_shaped_ = false;
};

}  // namespace dsig

#endif  // DSIG_UTIL_HUFFMAN_H_
