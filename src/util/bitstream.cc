#include "util/bitstream.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace dsig {

void BitWriter::Unmaterialize() {
  // Drop the partial tail appended by Materialize(); the flushed prefix is
  // exactly the whole words before the accumulator.
  bytes_.resize((size_bits_ - static_cast<size_t>(acc_bits_)) / 8);
  materialized_ = false;
}

void BitWriter::Materialize() const {
  if (materialized_) return;
  const size_t tail_bytes = (static_cast<size_t>(acc_bits_) + 7) / 8;
  const size_t offset = bytes_.size();
  bytes_.resize(offset + tail_bytes);
  for (size_t i = 0; i < tail_bytes; ++i) {
    bytes_[offset + i] = static_cast<uint8_t>(acc_ >> (8 * i));
  }
  materialized_ = true;
}

void BitWriter::WriteUnary(int count) {
  DSIG_CHECK_GE(count, 0);
  for (int left = count; left > 0;) {
    const int chunk = std::min(left, 64);
    WriteBits(0, chunk);
    left -= chunk;
  }
  WriteBit(true);
}

std::vector<uint8_t> BitWriter::TakeBytes() {
  Materialize();
  std::vector<uint8_t> taken = std::move(bytes_);
  Clear();
  return taken;
}

int BitReader::ReadZeros(int cap) {
  DSIG_CHECK_GE(cap, 0);
  int zeros = 0;
  while (zeros < cap && position_ < size_bits_) {
    const size_t remaining = size_bits_ - position_;
    const size_t byte = position_ >> 3;
    const int shift = static_cast<int>(position_ & 7);
    uint64_t window = LoadWord(byte) >> shift;
    int avail = 64 - shift;
    if (static_cast<size_t>(avail) > remaining) {
      // The window extends past the stream; stray trailing bits must not
      // fake a terminator (or hide one).
      avail = static_cast<int>(remaining);
      window &= bitstream_internal::LowMask(avail);
    }
    const int budget = std::min(avail, cap - zeros);
    const int trailing = std::min(std::countr_zero(window), budget);
    zeros += trailing;
    position_ += static_cast<size_t>(trailing);
    if (trailing < budget) break;  // stopped at a one bit
  }
  return zeros;
}

int BitReader::ReadUnary() {
  const int zeros = ReadZeros(std::numeric_limits<int>::max());
  // ReadBit aborts past the end, preserving the old bit-at-a-time behavior
  // on truncated streams; in bounds, the bit is a one by construction.
  const bool terminator = ReadBit();
  DSIG_CHECK(terminator);
  return zeros;
}

bool BitReader::TryReadUnary(int* zeros) {
  const size_t saved = position_;
  const int count = ReadZeros(std::numeric_limits<int>::max());
  if (AtEnd()) {
    position_ = saved;
    return false;
  }
  Skip(1);  // the terminating one
  *zeros = count;
  return true;
}

}  // namespace dsig
