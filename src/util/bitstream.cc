#include "util/bitstream.h"

#include <utility>

#include "util/logging.h"

namespace dsig {

void BitWriter::WriteBits(uint64_t value, int width) {
  DSIG_CHECK_GE(width, 0);
  DSIG_CHECK_LE(width, 64);
  for (int i = 0; i < width; ++i) {
    const size_t byte = size_bits_ >> 3;
    const int bit = static_cast<int>(size_bits_ & 7);
    if (byte >= bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1) bytes_[byte] |= static_cast<uint8_t>(1u << bit);
    ++size_bits_;
  }
}

void BitWriter::WriteUnary(int count) {
  DSIG_CHECK_GE(count, 0);
  for (int i = 0; i < count; ++i) WriteBit(false);
  WriteBit(true);
}

std::vector<uint8_t> BitWriter::TakeBytes() {
  size_bits_ = 0;
  return std::move(bytes_);
}

uint64_t BitReader::ReadBits(int width) {
  DSIG_CHECK_GE(width, 0);
  DSIG_CHECK_LE(width, 64);
  DSIG_CHECK_LE(position_ + static_cast<size_t>(width), size_bits_);
  uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    const size_t byte = position_ >> 3;
    const int bit = static_cast<int>(position_ & 7);
    if ((data_[byte] >> bit) & 1) value |= (uint64_t{1} << i);
    ++position_;
  }
  return value;
}

int BitReader::ReadUnary() {
  int zeros = 0;
  while (!ReadBit()) ++zeros;
  return zeros;
}

void BitReader::Seek(size_t position) {
  DSIG_CHECK_LE(position, size_bits_);
  position_ = position;
}

}  // namespace dsig
