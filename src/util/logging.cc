#include "util/logging.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace dsig {
namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

// One-letter tag, glog style: keeps the prefix fixed-width so interleaved
// bench/test output stays column-aligned and grep-able.
char SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return 'D';
    case LogSeverity::kInfo:
      return 'I';
    case LogSeverity::kWarning:
      return 'W';
    case LogSeverity::kError:
      return 'E';
    case LogSeverity::kFatal:
      return 'F';
  }
  return '?';
}

// Monotonic seconds since the first log statement of the process: cheap,
// unaffected by wall-clock jumps, and directly comparable to bench timings.
double MonotonicLogSeconds() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Emits the whole line through one write(2) so lines from different threads
// or processes sharing stderr never interleave mid-record. Retries on EINTR
// and short writes; gives up silently on hard errors (logging must not
// recurse into logging).
void WriteWholeLine(const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(STDERR_FILENO, data + done, size - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return;
    }
  }
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity; }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

bool ParseLogSeverity(const std::string& name, LogSeverity* severity) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  if (lower == "debug" || lower == "d") {
    *severity = LogSeverity::kDebug;
  } else if (lower == "info" || lower == "i") {
    *severity = LogSeverity::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "w") {
    *severity = LogSeverity::kWarning;
  } else if (lower == "error" || lower == "e") {
    *severity = LogSeverity::kError;
  } else if (lower == "fatal" || lower == "f") {
    *severity = LogSeverity::kFatal;
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%c %.6f ", SeverityTag(severity),
                MonotonicLogSeconds());
  stream_ << prefix << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::string line = stream_.str();
    line += '\n';
    WriteWholeLine(line.data(), line.size());
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace dsig
