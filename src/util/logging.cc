#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dsig {
namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity; }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

namespace internal_logging {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace dsig
