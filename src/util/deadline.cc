#include "util/deadline.h"

#include <chrono>

namespace dsig {
namespace {

thread_local Deadline tls_deadline;        // infinite by default
thread_local int tls_fail_after = -1;      // test failpoint, disabled

}  // namespace

uint64_t Deadline::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Deadline Deadline::AfterMillis(double ms) {
  const uint64_t now = NowNanos();
  if (ms <= 0) return Deadline(now);
  return Deadline(now + static_cast<uint64_t>(ms * 1e6));
}

double Deadline::remaining_millis() const {
  if (infinite()) return 1e18;
  const uint64_t now = NowNanos();
  if (now >= ns_) {
    return -static_cast<double>(now - ns_) / 1e6;
  }
  return static_cast<double>(ns_ - now) / 1e6;
}

const Deadline& CurrentDeadline() { return tls_deadline; }

DeadlineScope::DeadlineScope(const Deadline& deadline) : saved_(tls_deadline) {
  tls_deadline = deadline;
}

DeadlineScope::~DeadlineScope() { tls_deadline = saved_; }

bool DeadlineExpired() {
  if (tls_deadline.infinite()) return false;
  if (tls_fail_after >= 0) {
    if (tls_fail_after == 0) return true;  // latched: stays expired
    --tls_fail_after;
    return false;
  }
  return tls_deadline.expired();
}

void SetDeadlineCheckFailAfter(int n) { tls_fail_after = n; }

}  // namespace dsig
