#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/logging.h"

namespace dsig {

ThreadPoolTotals& GlobalThreadPoolTotals() {
  static ThreadPoolTotals totals;
  return totals;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Run(std::function<void()> task) {
  DSIG_CHECK(task != nullptr);
  const size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++queued_;
    ++in_flight_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryPop(size_t self, std::function<void()>* task) {
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  for (size_t step = 1; step < queues_.size(); ++step) {
    WorkerQueue& victim = *queues_[(self + step) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      GlobalThreadPoolTotals().steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    std::function<void()> task;
    if (TryPop(self, &task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        --queued_;
      }
      task();
      GlobalThreadPoolTotals().tasks_run.fetch_add(1,
                                                   std::memory_order_relaxed);
      bool drained = false;
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        drained = --in_flight_ == 0;
      }
      if (drained) drain_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    // Re-check under the lock: a Run() between our failed TryPop and here
    // would otherwise be missed.
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunks(n, 1, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

namespace {

// Shared state of one ParallelForChunks call. Heap-allocated and reference-
// counted so driver tasks that wake after the caller has already returned
// (having found the cursor exhausted) touch valid memory. Claiming goes
// through the mutex: chunks are coarse, so the lock is cold, and it makes
// "every claimed chunk is counted before the caller can unblock" trivially
// true — the property the completion barrier rests on.
struct LoopState {
  static constexpr size_t kNone = ~size_t{0};

  const std::function<void(size_t, size_t)>* fn;
  size_t n = 0;
  size_t num_chunks = 0;

  std::mutex mu;
  std::condition_variable done_cv;
  size_t next = 0;       // next unclaimed chunk
  size_t claimed = 0;    // chunks handed to a driver
  size_t completed = 0;  // chunks whose fn returned (or threw)
  bool cancelled = false;
  std::exception_ptr error;

  size_t Claim() {
    std::lock_guard<std::mutex> lock(mu);
    if (cancelled || next >= num_chunks) return kNone;
    ++claimed;
    return next++;
  }

  // mu must be held. Done = no chunk in flight and no chunk will start.
  bool Finished() const {
    return completed == claimed && (cancelled || next >= num_chunks);
  }

  // [begin, end) of chunk c under an even split of n into num_chunks.
  void Bounds(size_t c, size_t* begin, size_t* end) const {
    const size_t base = n / num_chunks;
    const size_t extra = n % num_chunks;
    *begin = c * base + std::min(c, extra);
    *end = *begin + base + (c < extra ? 1 : 0);
  }

  // Claims and runs chunks until the loop is exhausted or cancelled.
  void Drive() {
    while (true) {
      const size_t c = Claim();
      if (c == kNone) return;
      size_t begin = 0, end = 0;
      Bounds(c, &begin, &end);
      std::exception_ptr thrown;
      try {
        (*fn)(begin, end);
      } catch (...) {
        thrown = std::current_exception();
      }
      GlobalThreadPoolTotals().chunks_run.fetch_add(1,
                                                    std::memory_order_relaxed);
      bool done = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (thrown != nullptr) {
          // First failure wins; cancel the chunks not yet claimed.
          if (error == nullptr) error = thrown;
          cancelled = true;
        }
        ++completed;
        done = Finished();
      }
      if (done) done_cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::ParallelForChunks(
    size_t n, size_t min_grain,
    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  GlobalThreadPoolTotals().parallel_fors.fetch_add(1,
                                                   std::memory_order_relaxed);
  if (min_grain == 0) min_grain = 1;
  // ~4 chunks per thread so dynamic claiming rebalances uneven item costs,
  // but never chunks smaller than the grain and never more chunks than
  // items. The chunk count must NOT depend on runtime load — it feeds the
  // determinism contract in the header.
  const size_t by_grain = (n + min_grain - 1) / min_grain;
  const size_t num_chunks =
      std::max<size_t>(1, std::min(by_grain, num_threads() * 4));

  auto state = std::make_shared<LoopState>();
  state->fn = &fn;
  state->n = n;
  state->num_chunks = num_chunks;

  // One helper task per thread that could usefully participate; the caller
  // drives inline below, so a single-thread pool (or a single chunk) runs
  // the whole loop on the calling thread with no handoff.
  const size_t helpers = std::min(num_chunks, num_threads()) - 1;
  for (size_t h = 0; h < helpers; ++h) {
    Run([state] { state->Drive(); });
  }
  state->Drive();

  // The cursor being exhausted does not mean the loop is done — a helper
  // may still be inside fn. Completion, tracked under the state mutex, is
  // the barrier. Helpers that wake later find the cursor exhausted and
  // exit touching only the shared_ptr state.
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&state] { return state->Finished(); });
  }
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace dsig
