#include "util/crc32c.h"

namespace dsig {
namespace {

// Table for the reflected polynomial 0x82F63B78, built once at first use.
struct Crc32cTable {
  uint32_t entries[256];

  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const Crc32cTable& table = Table();
  uint32_t state = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    state = table.entries[(state ^ bytes[i]) & 0xFF] ^ (state >> 8);
  }
  return state ^ 0xFFFFFFFFu;
}

}  // namespace dsig
