#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace dsig {

void Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" form, unless the next token is itself a flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "";  // bare boolean flag
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  // Base 0: decimal by default, 0x… hex accepted (e.g. corrupt --xor=0x40).
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second;
}

}  // namespace dsig
