// SIMD query kernels with runtime CPU-feature dispatch.
//
// The query hot path on top of row decode is a handful of tiny scan loops:
// compare one small category byte per object (range filtering, kNN
// bucketing, observer selection), accumulate distances (aggregates), and
// partition object-table rows into near/far (reverse kNN). Each is a
// textbook 16/32-wide compare+movemask or widened accumulate, so this layer
// ships them as *kernels*: a table of per-kernel function pointers with a
// generic scalar baseline that is always built, plus SSE4.2 / AVX2 (x86) and
// NEON (aarch64) variants compiled in their own translation units with
// per-TU ISA flags. One binary serves any fleet machine — the best variant
// the running CPU supports is resolved once at startup, and tests or
// operators can pin any compiled level at runtime.
//
// Bit-identical contract: every kernel's result — including the order of
// extracted indices and the floating-point summation tree — is defined by
// the scalar reference in kernels_scalar.cc, and every ISA variant must
// reproduce it exactly. The differential fuzz suite (simd_kernels_test)
// enforces this at every compiled level, so callers may treat the dispatch
// level as unobservable.
//
// Overrides (checked once, at first use):
//   DSIG_FORCE_SCALAR=1   pin the generic scalar kernels
//   DSIG_SIMD=LEVEL       pin a level by name (scalar|sse4.2|avx2|neon);
//                         levels not compiled or not supported fall back to
//                         the best available one
// plus the SimdOverride RAII hook for tests and harnesses.
#ifndef DSIG_UTIL_SIMD_SIMD_H_
#define DSIG_UTIL_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dsig {
namespace simd {

// Dispatch levels, in strength order. On x86 the ladder is scalar -> SSE4.2
// -> AVX2; on aarch64 it is scalar -> NEON. Values are stable (exported as
// the simd.dispatch_level gauge and recorded in bench reports).
enum class SimdLevel : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

// One resolved set of kernels. All pointers are always non-null.
//
// Kernel semantics (the scalar reference is normative):
//
//  * extract_in_range(v, n, lo, hi, out): writes the indices i (ascending)
//    with lo <= v[i] < hi to out (caller provides room for n uint32s);
//    returns the count. lo/hi are ints so hi = 256 expresses "no upper
//    bound" even though lanes are bytes.
//  * count_in_range(v, n, lo, hi): the count alone, no index output.
//  * max_u8 / min_u8: horizontal max/min; 0 / 0xFF on an empty input.
//  * aggregate_f64(v, n, sum, min, max): *sum = the blocked sum of v —
//    eight stride-8 accumulator lanes (acc[i & 7] += v[i]) combined in the
//    fixed tree ((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7))
//    ... precisely: t[j] = acc[j] + acc[j+4] for j in 0..3, then
//    *sum = (t0 + t2) + (t1 + t3). The tree is part of the kernel contract
//    so every dispatch level produces the same bits. *min/*max get the
//    lane-order-independent extrema (+inf / -inf on empty input).
//  * compact_finite_f64(v, n, out): copies the values != kInfiniteWeight
//    (the object-distance table's "far" marker) to out in order; returns
//    the count.
//  * label_merge(ah, ad, an, bh, bd, bn): min-plus merge of two hub labels
//    (core/hub_labels.h). ah/bh are strictly-ascending hub ranks, ad/bd the
//    matching finite non-negative distances; returns min over shared hubs h
//    of ad[h] + bd[h], or +inf when the labels share no hub. Hubs are
//    unique within a label and ranks stay below 2^31 (they index nodes), so
//    the candidate set {ad[i] + bd[j] : ah[i] == bh[j]} is visit-order
//    independent and any intersection strategy (linear merge, galloping,
//    block compare) yields the same bits.
struct KernelTable {
  const char* name;
  size_t (*extract_in_range)(const uint8_t* v, size_t n, int lo, int hi,
                             uint32_t* out);
  size_t (*count_in_range)(const uint8_t* v, size_t n, int lo, int hi);
  uint8_t (*max_u8)(const uint8_t* v, size_t n);
  uint8_t (*min_u8)(const uint8_t* v, size_t n);
  void (*aggregate_f64)(const double* v, size_t n, double* sum, double* min,
                        double* max);
  size_t (*compact_finite_f64)(const double* v, size_t n, double* out);
  double (*label_merge)(const uint32_t* ah, const double* ad, size_t an,
                        const uint32_t* bh, const double* bd, size_t bn);
};

// The active kernel table. First call detects CPU features, applies the
// DSIG_FORCE_SCALAR / DSIG_SIMD environment overrides, and caches the
// result; afterwards this is one atomic load.
const KernelTable& Kernels();

// The level Kernels() currently dispatches to.
SimdLevel ActiveLevel();

// The strongest level this binary compiled *and* this CPU supports,
// ignoring overrides.
SimdLevel DetectedLevel();

// Levels compiled into this binary and supported by this CPU (always
// includes kScalar, ascending). Tests and benches iterate this to cover
// every reachable dispatch path.
std::vector<SimdLevel> AvailableLevels();

// Pins the active level. Returns false (level unchanged) when the variant
// was not compiled or the CPU lacks it. Not intended for concurrent use
// with running queries — pin before serving, or from a quiesced test.
bool SetActiveLevel(SimdLevel level);

// RAII pin for tests/harnesses: pins `level` for its lifetime, restores the
// previous level on destruction.
class SimdOverride {
 public:
  explicit SimdOverride(SimdLevel level);
  ~SimdOverride();
  SimdOverride(const SimdOverride&) = delete;
  SimdOverride& operator=(const SimdOverride&) = delete;

  // False when the requested level was unavailable (the override then kept
  // the previous level active).
  bool applied() const { return applied_; }

 private:
  SimdLevel previous_;
  bool applied_;
};

const char* SimdLevelName(SimdLevel level);

// Human-readable summary of what the CPU offers vs what this binary built,
// e.g. "sse4.2 avx2 (compiled: scalar sse4.2 avx2; active: avx2)". Printed
// by `dsig_tool stats` and the server startup log.
std::string CpuFeatureString();

// Per-variant tables; null when the variant is not compiled into this
// binary. Defined one per TU so each can carry its own ISA flags.
const KernelTable* ScalarKernels();  // never null
const KernelTable* Sse42Kernels();
const KernelTable* Avx2Kernels();
const KernelTable* NeonKernels();

}  // namespace simd
}  // namespace dsig

#endif  // DSIG_UTIL_SIMD_SIMD_H_
