// SSE4.2 kernel variants (16-wide u8 lanes, 2-wide f64 lanes). Compiled
// with -msse4.2 on x86 builds only; elsewhere this TU degenerates to a
// getter that returns null so dispatch skips the level.
#include "util/simd/simd.h"

#if defined(DSIG_SIMD_ENABLE_SSE42)

#include <nmmintrin.h>

#include <bit>
#include <limits>

namespace dsig {
namespace simd {
namespace {

// 16-lane mask of lo <= v < hi as a movemask-ready byte vector. Unsigned u8
// compares via saturating max/min: (max(x, lo) == x) <=> x >= lo, and
// (min(x, hi-1) == x) <=> x <= hi-1. lo/hi in [0, 256]; hi >= 256 means no
// upper bound and lo <= 0 means no lower bound.
inline __m128i InRangeMask(__m128i x, int lo, int hi) {
  __m128i m = _mm_set1_epi8(static_cast<char>(0xFF));
  if (lo > 0) {
    __m128i lov = _mm_set1_epi8(static_cast<char>(lo));
    m = _mm_cmpeq_epi8(_mm_max_epu8(x, lov), x);
  }
  if (hi < 256) {
    __m128i hiv = _mm_set1_epi8(static_cast<char>(hi - 1));
    m = _mm_and_si128(m, _mm_cmpeq_epi8(_mm_min_epu8(x, hiv), x));
  }
  return m;
}

// Byte lanes live in [0, 255], so any lo/hi can be clamped to [0, 256]
// without changing lo <= v < hi — and InRangeMask's set1_epi8 broadcasts
// would otherwise truncate an out-of-byte-range bound.
inline bool NormalizeRange(int* lo, int* hi) {
  if (*lo < 0) *lo = 0;
  if (*hi > 256) *hi = 256;
  return *lo < *hi;
}

size_t ExtractInRangeSse42(const uint8_t* v, size_t n, int lo, int hi,
                           uint32_t* out) {
  if (!NormalizeRange(&lo, &hi)) return 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    unsigned mask =
        static_cast<unsigned>(_mm_movemask_epi8(InRangeMask(x, lo, hi)));
    while (mask != 0) {
      out[count++] = static_cast<uint32_t>(i) + std::countr_zero(mask);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] < hi) out[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

size_t CountInRangeSse42(const uint8_t* v, size_t n, int lo, int hi) {
  if (!NormalizeRange(&lo, &hi)) return 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    count += std::popcount(
        static_cast<unsigned>(_mm_movemask_epi8(InRangeMask(x, lo, hi))));
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] < hi) ++count;
  }
  return count;
}

uint8_t MaxU8Sse42(const uint8_t* v, size_t n) {
  uint8_t m = 0;
  size_t i = 0;
  if (n >= 16) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v));
    for (i = 16; i + 16 <= n; i += 16) {
      acc = _mm_max_epu8(
          acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
    }
    // Horizontal max: fold 16 -> 8 -> 4 -> 2 -> 1 lanes.
    acc = _mm_max_epu8(acc, _mm_srli_si128(acc, 8));
    acc = _mm_max_epu8(acc, _mm_srli_si128(acc, 4));
    acc = _mm_max_epu8(acc, _mm_srli_si128(acc, 2));
    acc = _mm_max_epu8(acc, _mm_srli_si128(acc, 1));
    m = static_cast<uint8_t>(_mm_cvtsi128_si32(acc) & 0xFF);
  }
  for (; i < n; ++i) {
    if (v[i] > m) m = v[i];
  }
  return m;
}

uint8_t MinU8Sse42(const uint8_t* v, size_t n) {
  uint8_t m = 0xFF;
  size_t i = 0;
  if (n >= 16) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v));
    for (i = 16; i + 16 <= n; i += 16) {
      acc = _mm_min_epu8(
          acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
    }
    acc = _mm_min_epu8(acc, _mm_srli_si128(acc, 8));
    acc = _mm_min_epu8(acc, _mm_srli_si128(acc, 4));
    acc = _mm_min_epu8(acc, _mm_srli_si128(acc, 2));
    acc = _mm_min_epu8(acc, _mm_srli_si128(acc, 1));
    m = static_cast<uint8_t>(_mm_cvtsi128_si32(acc) & 0xFF);
  }
  for (; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  return m;
}

void AggregateF64Sse42(const double* v, size_t n, double* sum, double* min,
                       double* max) {
  // Four 2-lane accumulators hold blocked lanes (0,1)(2,3)(4,5)(6,7); the
  // spill + fixed combine tree matches the scalar contract exactly.
  __m128d a0 = _mm_setzero_pd();
  __m128d a1 = _mm_setzero_pd();
  __m128d a2 = _mm_setzero_pd();
  __m128d a3 = _mm_setzero_pd();
  __m128d vmn = _mm_set1_pd(std::numeric_limits<double>::infinity());
  __m128d vmx = _mm_set1_pd(-std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128d x0 = _mm_loadu_pd(v + i);
    __m128d x1 = _mm_loadu_pd(v + i + 2);
    __m128d x2 = _mm_loadu_pd(v + i + 4);
    __m128d x3 = _mm_loadu_pd(v + i + 6);
    a0 = _mm_add_pd(a0, x0);
    a1 = _mm_add_pd(a1, x1);
    a2 = _mm_add_pd(a2, x2);
    a3 = _mm_add_pd(a3, x3);
    vmn = _mm_min_pd(_mm_min_pd(vmn, _mm_min_pd(x0, x1)),
                     _mm_min_pd(x2, x3));
    vmx = _mm_max_pd(_mm_max_pd(vmx, _mm_max_pd(x0, x1)),
                     _mm_max_pd(x2, x3));
  }
  double acc[8];
  _mm_storeu_pd(acc + 0, a0);
  _mm_storeu_pd(acc + 2, a1);
  _mm_storeu_pd(acc + 4, a2);
  _mm_storeu_pd(acc + 6, a3);
  double mn_arr[2], mx_arr[2];
  _mm_storeu_pd(mn_arr, vmn);
  _mm_storeu_pd(mx_arr, vmx);
  double mn = mn_arr[0] < mn_arr[1] ? mn_arr[0] : mn_arr[1];
  double mx = mx_arr[0] > mx_arr[1] ? mx_arr[0] : mx_arr[1];
  for (; i < n; ++i) {
    acc[i & 7] += v[i];
    if (v[i] < mn) mn = v[i];
    if (v[i] > mx) mx = v[i];
  }
  double t0 = acc[0] + acc[4];
  double t1 = acc[1] + acc[5];
  double t2 = acc[2] + acc[6];
  double t3 = acc[3] + acc[7];
  *sum = (t0 + t2) + (t1 + t3);
  *min = mn;
  *max = mx;
}

size_t CompactFiniteF64Sse42(const double* v, size_t n, double* out) {
  const __m128d inf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d x = _mm_loadu_pd(v + i);
    int keep = _mm_movemask_pd(_mm_cmpneq_pd(x, inf));
    if (keep == 3) {
      _mm_storeu_pd(out + count, x);
      count += 2;
    } else if (keep == 1) {
      out[count++] = v[i];
    } else if (keep == 2) {
      out[count++] = v[i + 1];
    }
  }
  if (i < n && v[i] != std::numeric_limits<double>::infinity()) {
    out[count++] = v[i];
  }
  return count;
}

double LabelMergeSse42(const uint32_t* ah, const double* ad, size_t an,
                       const uint32_t* bh, const double* bd, size_t bn) {
  // Block-compare gallop: broadcast the current a-hub against four b-hubs.
  // Ranks stay below 2^31 (kernel contract), so signed epi32 compares are
  // exact. min-plus is visit-order independent, so skipping non-matching
  // b-lanes in blocks cannot change the result bits.
  double best = std::numeric_limits<double>::infinity();
  size_t i = 0, j = 0;
  while (i < an && j + 4 <= bn) {
    const __m128i av = _mm_set1_epi32(static_cast<int>(ah[i]));
    const __m128i bv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bh + j));
    const int eq = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(av, bv)));
    if (eq != 0) {
      const int lane = std::countr_zero(static_cast<unsigned>(eq));
      const double d = ad[i] + bd[j + static_cast<size_t>(lane)];
      if (d < best) best = d;
      ++i;
      j += static_cast<size_t>(lane) + 1;
      continue;
    }
    // b-lanes below the a-hub form a prefix (sorted input); skip them all.
    const int lt = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(av, bv)));
    if (lt == 0xF) {
      j += 4;
    } else {
      j += static_cast<size_t>(std::popcount(static_cast<unsigned>(lt)));
      ++i;  // bh[j] > ah[i] now, so this a-hub cannot match
    }
  }
  while (i < an && j < bn) {
    if (ah[i] == bh[j]) {
      const double d = ad[i] + bd[j];
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (ah[i] < bh[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

const KernelTable kSse42Table = {
    "sse4.2",        ExtractInRangeSse42, CountInRangeSse42,
    MaxU8Sse42,      MinU8Sse42,          AggregateF64Sse42,
    CompactFiniteF64Sse42, LabelMergeSse42,
};

}  // namespace

const KernelTable* Sse42Kernels() { return &kSse42Table; }

}  // namespace simd
}  // namespace dsig

#else  // !DSIG_SIMD_ENABLE_SSE42

namespace dsig {
namespace simd {
const KernelTable* Sse42Kernels() { return nullptr; }
}  // namespace simd
}  // namespace dsig

#endif
