// Runtime kernel dispatch: detect what the CPU supports, intersect with what
// this binary compiled, apply operator overrides, and publish one atomic
// table pointer that the query layer loads on every kernel call.
#include "util/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/logging.h"

namespace dsig {
namespace simd {

namespace {

const KernelTable* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return ScalarKernels();
    case SimdLevel::kSse42:
      return Sse42Kernels();
    case SimdLevel::kAvx2:
      return Avx2Kernels();
    case SimdLevel::kNeon:
      return NeonKernels();
  }
  return nullptr;
}

// Does the *CPU we are running on* support this level? (Independent of
// whether the variant was compiled in — TableFor answers that.)
bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse42:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse4.2");
#else
      return false;
#endif
    case SimdLevel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool Usable(SimdLevel level) {
  return TableFor(level) != nullptr && CpuSupports(level);
}

constexpr SimdLevel kLadder[] = {SimdLevel::kScalar, SimdLevel::kSse42,
                                 SimdLevel::kAvx2, SimdLevel::kNeon};

SimdLevel BestUsableLevel() {
  SimdLevel best = SimdLevel::kScalar;
  for (SimdLevel level : kLadder) {
    if (Usable(level)) best = level;
  }
  return best;
}

bool EnvTruthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

bool ParseLevelName(const char* s, SimdLevel* out) {
  for (SimdLevel level : kLadder) {
    if (std::strcmp(s, SimdLevelName(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

std::atomic<const KernelTable*> g_active_table{nullptr};
std::atomic<int> g_active_level{static_cast<int>(SimdLevel::kScalar)};
SimdLevel g_detected_level = SimdLevel::kScalar;
std::once_flag g_init_once;

void StoreActive(SimdLevel level) {
  // Level first, table second: Kernels() keys readiness off the table
  // pointer, and ActiveLevel() forces init the same way.
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active_table.store(TableFor(level), std::memory_order_release);
}

void InitDispatch() {
  g_detected_level = BestUsableLevel();
  SimdLevel chosen = g_detected_level;
  if (EnvTruthy("DSIG_FORCE_SCALAR")) {
    chosen = SimdLevel::kScalar;
  } else if (const char* req = std::getenv("DSIG_SIMD");
             req != nullptr && req[0] != '\0') {
    SimdLevel parsed;
    if (!ParseLevelName(req, &parsed)) {
      DSIG_LOG(Warning) << "DSIG_SIMD=" << req
                     << " is not a dispatch level; using "
                     << SimdLevelName(chosen);
    } else if (!Usable(parsed)) {
      DSIG_LOG(Warning) << "DSIG_SIMD=" << req
                     << " not available on this cpu/build; using "
                     << SimdLevelName(chosen);
    } else {
      chosen = parsed;
    }
  }
  StoreActive(chosen);
}

void EnsureInit() { std::call_once(g_init_once, InitDispatch); }

}  // namespace

const KernelTable& Kernels() {
  const KernelTable* t = g_active_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    EnsureInit();
    t = g_active_table.load(std::memory_order_acquire);
  }
  return *t;
}

SimdLevel ActiveLevel() {
  EnsureInit();
  return static_cast<SimdLevel>(g_active_level.load(std::memory_order_relaxed));
}

SimdLevel DetectedLevel() {
  EnsureInit();
  return g_detected_level;
}

std::vector<SimdLevel> AvailableLevels() {
  EnsureInit();
  std::vector<SimdLevel> levels;
  for (SimdLevel level : kLadder) {
    if (Usable(level)) levels.push_back(level);
  }
  return levels;
}

bool SetActiveLevel(SimdLevel level) {
  EnsureInit();
  if (!Usable(level)) return false;
  StoreActive(level);
  return true;
}

SimdOverride::SimdOverride(SimdLevel level)
    : previous_(ActiveLevel()), applied_(SetActiveLevel(level)) {}

SimdOverride::~SimdOverride() {
  if (applied_) SetActiveLevel(previous_);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse4.2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

std::string CpuFeatureString() {
  EnsureInit();
  std::string s = "cpu:";
  bool any = false;
  for (SimdLevel level : kLadder) {
    if (level != SimdLevel::kScalar && CpuSupports(level)) {
      s += ' ';
      s += SimdLevelName(level);
      any = true;
    }
  }
  if (!any) s += " (baseline)";
  s += "; compiled:";
  for (SimdLevel level : kLadder) {
    if (TableFor(level) != nullptr) {
      s += ' ';
      s += SimdLevelName(level);
    }
  }
  s += "; active: ";
  s += SimdLevelName(ActiveLevel());
  return s;
}

}  // namespace simd
}  // namespace dsig
