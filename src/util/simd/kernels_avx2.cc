// AVX2 kernel variants (32-wide u8 lanes, 4-wide f64 lanes). Compiled with
// -mavx2 on x86 builds only; elsewhere the getter returns null.
#include "util/simd/simd.h"

#if defined(DSIG_SIMD_ENABLE_AVX2)

#include <immintrin.h>

#include <bit>
#include <limits>

namespace dsig {
namespace simd {
namespace {

// 32-lane mask of lo <= v < hi (same unsigned max/min trick as the SSE
// variant, see kernels_sse42.cc).
inline __m256i InRangeMask(__m256i x, int lo, int hi) {
  __m256i m = _mm256_set1_epi8(static_cast<char>(0xFF));
  if (lo > 0) {
    __m256i lov = _mm256_set1_epi8(static_cast<char>(lo));
    m = _mm256_cmpeq_epi8(_mm256_max_epu8(x, lov), x);
  }
  if (hi < 256) {
    __m256i hiv = _mm256_set1_epi8(static_cast<char>(hi - 1));
    m = _mm256_and_si256(m, _mm256_cmpeq_epi8(_mm256_min_epu8(x, hiv), x));
  }
  return m;
}

// Clamp to [0, 256] before broadcasting: lanes are bytes, so the clamp is
// semantics-preserving, and set1_epi8 would truncate wider bounds.
inline bool NormalizeRange(int* lo, int* hi) {
  if (*lo < 0) *lo = 0;
  if (*hi > 256) *hi = 256;
  return *lo < *hi;
}

size_t ExtractInRangeAvx2(const uint8_t* v, size_t n, int lo, int hi,
                          uint32_t* out) {
  if (!NormalizeRange(&lo, &hi)) return 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    uint32_t mask =
        static_cast<uint32_t>(_mm256_movemask_epi8(InRangeMask(x, lo, hi)));
    while (mask != 0) {
      out[count++] = static_cast<uint32_t>(i) + std::countr_zero(mask);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] < hi) out[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

size_t CountInRangeAvx2(const uint8_t* v, size_t n, int lo, int hi) {
  if (!NormalizeRange(&lo, &hi)) return 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    count += std::popcount(
        static_cast<uint32_t>(_mm256_movemask_epi8(InRangeMask(x, lo, hi))));
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] < hi) ++count;
  }
  return count;
}

uint8_t MaxU8Avx2(const uint8_t* v, size_t n) {
  uint8_t m = 0;
  size_t i = 0;
  if (n >= 32) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
    for (i = 32; i + 32 <= n; i += 32) {
      acc = _mm256_max_epu8(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
    }
    __m128i lane = _mm_max_epu8(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
    lane = _mm_max_epu8(lane, _mm_srli_si128(lane, 8));
    lane = _mm_max_epu8(lane, _mm_srli_si128(lane, 4));
    lane = _mm_max_epu8(lane, _mm_srli_si128(lane, 2));
    lane = _mm_max_epu8(lane, _mm_srli_si128(lane, 1));
    m = static_cast<uint8_t>(_mm_cvtsi128_si32(lane) & 0xFF);
  }
  for (; i < n; ++i) {
    if (v[i] > m) m = v[i];
  }
  return m;
}

uint8_t MinU8Avx2(const uint8_t* v, size_t n) {
  uint8_t m = 0xFF;
  size_t i = 0;
  if (n >= 32) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
    for (i = 32; i + 32 <= n; i += 32) {
      acc = _mm256_min_epu8(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
    }
    __m128i lane = _mm_min_epu8(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
    lane = _mm_min_epu8(lane, _mm_srli_si128(lane, 8));
    lane = _mm_min_epu8(lane, _mm_srli_si128(lane, 4));
    lane = _mm_min_epu8(lane, _mm_srli_si128(lane, 2));
    lane = _mm_min_epu8(lane, _mm_srli_si128(lane, 1));
    m = static_cast<uint8_t>(_mm_cvtsi128_si32(lane) & 0xFF);
  }
  for (; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  return m;
}

void AggregateF64Avx2(const double* v, size_t n, double* sum, double* min,
                      double* max) {
  // Two 4-lane accumulators hold blocked lanes (0..3)(4..7); the spill +
  // fixed combine tree matches the scalar contract exactly.
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d vmn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d vmx = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d x0 = _mm256_loadu_pd(v + i);
    __m256d x1 = _mm256_loadu_pd(v + i + 4);
    a0 = _mm256_add_pd(a0, x0);
    a1 = _mm256_add_pd(a1, x1);
    vmn = _mm256_min_pd(vmn, _mm256_min_pd(x0, x1));
    vmx = _mm256_max_pd(vmx, _mm256_max_pd(x0, x1));
  }
  double acc[8];
  _mm256_storeu_pd(acc + 0, a0);
  _mm256_storeu_pd(acc + 4, a1);
  double mn_arr[4], mx_arr[4];
  _mm256_storeu_pd(mn_arr, vmn);
  _mm256_storeu_pd(mx_arr, vmx);
  double mn = mn_arr[0];
  double mx = mx_arr[0];
  for (int j = 1; j < 4; ++j) {
    if (mn_arr[j] < mn) mn = mn_arr[j];
    if (mx_arr[j] > mx) mx = mx_arr[j];
  }
  for (; i < n; ++i) {
    acc[i & 7] += v[i];
    if (v[i] < mn) mn = v[i];
    if (v[i] > mx) mx = v[i];
  }
  double t0 = acc[0] + acc[4];
  double t1 = acc[1] + acc[5];
  double t2 = acc[2] + acc[6];
  double t3 = acc[3] + acc[7];
  *sum = (t0 + t2) + (t1 + t3);
  *min = mn;
  *max = mx;
}

size_t CompactFiniteF64Avx2(const double* v, size_t n, double* out) {
  // Left-pack via a 16-entry permutation LUT over the 4-bit keep mask
  // (64-bit lanes expressed as u32 index pairs for vpermd).
  alignas(32) static const uint32_t kPack[16][8] = {
      {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7},
      {2, 3, 0, 1, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7},
      {4, 5, 0, 1, 2, 3, 6, 7}, {0, 1, 4, 5, 2, 3, 6, 7},
      {2, 3, 4, 5, 0, 1, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7},
      {6, 7, 0, 1, 2, 3, 4, 5}, {0, 1, 6, 7, 2, 3, 4, 5},
      {2, 3, 6, 7, 0, 1, 4, 5}, {0, 1, 2, 3, 6, 7, 4, 5},
      {4, 5, 6, 7, 0, 1, 2, 3}, {0, 1, 4, 5, 6, 7, 2, 3},
      {2, 3, 4, 5, 6, 7, 0, 1}, {0, 1, 2, 3, 4, 5, 6, 7},
  };
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d x = _mm256_loadu_pd(v + i);
    // NEQ_UQ matches the scalar `v != inf` (NaN compares unequal, so it is
    // kept at every level alike).
    int keep =
        _mm256_movemask_pd(_mm256_cmp_pd(x, inf, _CMP_NEQ_UQ));
    __m256i idx = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPack[keep]));
    __m256d packed = _mm256_castsi256_pd(
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(x), idx));
    _mm256_storeu_pd(out + count, packed);
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(keep)));
  }
  for (; i < n; ++i) {
    if (v[i] != std::numeric_limits<double>::infinity()) out[count++] = v[i];
  }
  return count;
}

double LabelMergeAvx2(const uint32_t* ah, const double* ad, size_t an,
                      const uint32_t* bh, const double* bd, size_t bn) {
  // Block-compare gallop, eight b-hubs per step (see the SSE4.2 variant for
  // the correctness argument; ranks < 2^31 make signed compares exact and
  // min-plus is visit-order independent).
  double best = std::numeric_limits<double>::infinity();
  size_t i = 0, j = 0;
  while (i < an && j + 8 <= bn) {
    const __m256i av = _mm256_set1_epi32(static_cast<int>(ah[i]));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bh + j));
    const int eq =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(av, bv)));
    if (eq != 0) {
      const int lane = std::countr_zero(static_cast<unsigned>(eq));
      const double d = ad[i] + bd[j + static_cast<size_t>(lane)];
      if (d < best) best = d;
      ++i;
      j += static_cast<size_t>(lane) + 1;
      continue;
    }
    const int lt =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(av, bv)));
    if (lt == 0xFF) {
      j += 8;
    } else {
      j += static_cast<size_t>(std::popcount(static_cast<unsigned>(lt)));
      ++i;  // bh[j] > ah[i] now, so this a-hub cannot match
    }
  }
  while (i < an && j < bn) {
    if (ah[i] == bh[j]) {
      const double d = ad[i] + bd[j];
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (ah[i] < bh[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

const KernelTable kAvx2Table = {
    "avx2",         ExtractInRangeAvx2, CountInRangeAvx2,
    MaxU8Avx2,      MinU8Avx2,          AggregateF64Avx2,
    CompactFiniteF64Avx2, LabelMergeAvx2,
};

}  // namespace

const KernelTable* Avx2Kernels() { return &kAvx2Table; }

}  // namespace simd
}  // namespace dsig

#else  // !DSIG_SIMD_ENABLE_AVX2

namespace dsig {
namespace simd {
const KernelTable* Avx2Kernels() { return nullptr; }
}  // namespace simd
}  // namespace dsig

#endif
