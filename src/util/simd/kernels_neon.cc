// NEON kernel variants for aarch64 (16-wide u8 lanes, 2-wide f64 lanes).
// NEON has no movemask; the nibble-mask idiom (vshrn on the 16-bit view
// yields 4 mask bits per byte lane in one u64) substitutes. On non-arm
// builds the getter returns null.
#include "util/simd/simd.h"

#if defined(DSIG_SIMD_ENABLE_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include <bit>
#include <limits>

namespace dsig {
namespace simd {
namespace {

// 16-lane 0xFF/0x00 mask of lo <= v < hi.
inline uint8x16_t InRangeMask(uint8x16_t x, int lo, int hi) {
  uint8x16_t m = vdupq_n_u8(0xFF);
  if (lo > 0) m = vcgeq_u8(x, vdupq_n_u8(static_cast<uint8_t>(lo)));
  if (hi < 256) {
    m = vandq_u8(m, vcleq_u8(x, vdupq_n_u8(static_cast<uint8_t>(hi - 1))));
  }
  return m;
}

// Compress a byte mask to a u64 with 4 bits (one nibble) per lane.
inline uint64_t NibbleMask(uint8x16_t m) {
  return vget_lane_u64(
      vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(m), 4)), 0);
}

// Clamp to [0, 256] before broadcasting: lanes are bytes, so the clamp is
// semantics-preserving, and vdupq_n_u8 would truncate wider bounds.
inline bool NormalizeRange(int* lo, int* hi) {
  if (*lo < 0) *lo = 0;
  if (*hi > 256) *hi = 256;
  return *lo < *hi;
}

size_t ExtractInRangeNeon(const uint8_t* v, size_t n, int lo, int hi,
                          uint32_t* out) {
  if (!NormalizeRange(&lo, &hi)) return 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint64_t mask = NibbleMask(InRangeMask(vld1q_u8(v + i), lo, hi));
    while (mask != 0) {
      int lane = std::countr_zero(mask) >> 2;
      out[count++] = static_cast<uint32_t>(i) + static_cast<uint32_t>(lane);
      mask &= ~(0xFULL << (lane * 4));
    }
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] < hi) out[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

size_t CountInRangeNeon(const uint8_t* v, size_t n, int lo, int hi) {
  if (!NormalizeRange(&lo, &hi)) return 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    count += static_cast<size_t>(
        std::popcount(NibbleMask(InRangeMask(vld1q_u8(v + i), lo, hi))) / 4);
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] < hi) ++count;
  }
  return count;
}

uint8_t MaxU8Neon(const uint8_t* v, size_t n) {
  uint8_t m = 0;
  size_t i = 0;
  if (n >= 16) {
    uint8x16_t acc = vld1q_u8(v);
    for (i = 16; i + 16 <= n; i += 16) acc = vmaxq_u8(acc, vld1q_u8(v + i));
    m = vmaxvq_u8(acc);
  }
  for (; i < n; ++i) {
    if (v[i] > m) m = v[i];
  }
  return m;
}

uint8_t MinU8Neon(const uint8_t* v, size_t n) {
  uint8_t m = 0xFF;
  size_t i = 0;
  if (n >= 16) {
    uint8x16_t acc = vld1q_u8(v);
    for (i = 16; i + 16 <= n; i += 16) acc = vminq_u8(acc, vld1q_u8(v + i));
    m = vminvq_u8(acc);
  }
  for (; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  return m;
}

void AggregateF64Neon(const double* v, size_t n, double* sum, double* min,
                      double* max) {
  float64x2_t a0 = vdupq_n_f64(0);
  float64x2_t a1 = vdupq_n_f64(0);
  float64x2_t a2 = vdupq_n_f64(0);
  float64x2_t a3 = vdupq_n_f64(0);
  float64x2_t vmn = vdupq_n_f64(std::numeric_limits<double>::infinity());
  float64x2_t vmx = vdupq_n_f64(-std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    float64x2_t x0 = vld1q_f64(v + i);
    float64x2_t x1 = vld1q_f64(v + i + 2);
    float64x2_t x2 = vld1q_f64(v + i + 4);
    float64x2_t x3 = vld1q_f64(v + i + 6);
    a0 = vaddq_f64(a0, x0);
    a1 = vaddq_f64(a1, x1);
    a2 = vaddq_f64(a2, x2);
    a3 = vaddq_f64(a3, x3);
    vmn = vminq_f64(vminq_f64(vmn, vminq_f64(x0, x1)), vminq_f64(x2, x3));
    vmx = vmaxq_f64(vmaxq_f64(vmx, vmaxq_f64(x0, x1)), vmaxq_f64(x2, x3));
  }
  double acc[8];
  vst1q_f64(acc + 0, a0);
  vst1q_f64(acc + 2, a1);
  vst1q_f64(acc + 4, a2);
  vst1q_f64(acc + 6, a3);
  double mn = vminvq_f64(vmn);
  double mx = vmaxvq_f64(vmx);
  for (; i < n; ++i) {
    acc[i & 7] += v[i];
    if (v[i] < mn) mn = v[i];
    if (v[i] > mx) mx = v[i];
  }
  double t0 = acc[0] + acc[4];
  double t1 = acc[1] + acc[5];
  double t2 = acc[2] + acc[6];
  double t3 = acc[3] + acc[7];
  *sum = (t0 + t2) + (t1 + t3);
  *min = mn;
  *max = mx;
}

size_t CompactFiniteF64Neon(const double* v, size_t n, double* out) {
  const double kInf = std::numeric_limits<double>::infinity();
  const float64x2_t inf = vdupq_n_f64(kInf);
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t x = vld1q_f64(v + i);
    uint64x2_t eq = vceqq_f64(x, inf);
    uint64_t drop0 = vgetq_lane_u64(eq, 0);
    uint64_t drop1 = vgetq_lane_u64(eq, 1);
    if ((drop0 | drop1) == 0) {
      vst1q_f64(out + count, x);
      count += 2;
    } else {
      if (drop0 == 0) out[count++] = v[i];
      if (drop1 == 0) out[count++] = v[i + 1];
    }
  }
  if (i < n && v[i] != kInf) out[count++] = v[i];
  return count;
}

double LabelMergeNeon(const uint32_t* ah, const double* ad, size_t an,
                      const uint32_t* bh, const double* bd, size_t bn) {
  // Block-compare gallop, four b-hubs per step. NEON has no movemask;
  // narrowing the 32-bit compare result to 16 bits per lane packs the four
  // verdicts into one u64 (0xFFFF per true lane). min-plus is visit-order
  // independent, so the blocked skip cannot change the result bits.
  double best = std::numeric_limits<double>::infinity();
  size_t i = 0, j = 0;
  while (i < an && j + 4 <= bn) {
    const uint32x4_t av = vdupq_n_u32(ah[i]);
    const uint32x4_t bv = vld1q_u32(bh + j);
    const uint64_t eq = vget_lane_u64(
        vreinterpret_u64_u16(vmovn_u32(vceqq_u32(av, bv))), 0);
    if (eq != 0) {
      const int lane = std::countr_zero(eq) >> 4;
      const double d = ad[i] + bd[j + static_cast<size_t>(lane)];
      if (d < best) best = d;
      ++i;
      j += static_cast<size_t>(lane) + 1;
      continue;
    }
    const uint64_t lt = vget_lane_u64(
        vreinterpret_u64_u16(vmovn_u32(vcltq_u32(bv, av))), 0);
    if (lt == ~uint64_t{0}) {
      j += 4;
    } else {
      j += static_cast<size_t>(std::popcount(lt)) / 16;
      ++i;  // bh[j] > ah[i] now, so this a-hub cannot match
    }
  }
  while (i < an && j < bn) {
    if (ah[i] == bh[j]) {
      const double d = ad[i] + bd[j];
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (ah[i] < bh[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

const KernelTable kNeonTable = {
    "neon",         ExtractInRangeNeon, CountInRangeNeon,
    MaxU8Neon,      MinU8Neon,          AggregateF64Neon,
    CompactFiniteF64Neon, LabelMergeNeon,
};

}  // namespace

const KernelTable* NeonKernels() { return &kNeonTable; }

}  // namespace simd
}  // namespace dsig

#else  // !DSIG_SIMD_ENABLE_NEON || !__aarch64__

namespace dsig {
namespace simd {
const KernelTable* NeonKernels() { return nullptr; }
}  // namespace simd
}  // namespace dsig

#endif
