// Generic scalar kernels — always compiled, and *normative*: every ISA
// variant must reproduce these results bit-for-bit (including index order
// and the fixed f64 summation tree). Keep these implementations boring.
#include <limits>

#include "util/simd/simd.h"

namespace dsig {
namespace simd {
namespace {

size_t ExtractInRangeScalar(const uint8_t* v, size_t n, int lo, int hi,
                            uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] >= lo && v[i] < hi) out[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

size_t CountInRangeScalar(const uint8_t* v, size_t n, int lo, int hi) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] >= lo && v[i] < hi) ++count;
  }
  return count;
}

uint8_t MaxU8Scalar(const uint8_t* v, size_t n) {
  uint8_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] > m) m = v[i];
  }
  return m;
}

uint8_t MinU8Scalar(const uint8_t* v, size_t n) {
  uint8_t m = 0xFF;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  return m;
}

void AggregateF64Scalar(const double* v, size_t n, double* sum, double* min,
                        double* max) {
  // Eight stride-8 accumulator lanes combined in a fixed tree. This blocked
  // order (not plain left-to-right) is the kernel contract: it is what two
  // 4-wide vector accumulators produce naturally, so every dispatch level
  // can match it exactly.
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    acc[i & 7] += v[i];
    if (v[i] < mn) mn = v[i];
    if (v[i] > mx) mx = v[i];
  }
  double t0 = acc[0] + acc[4];
  double t1 = acc[1] + acc[5];
  double t2 = acc[2] + acc[6];
  double t3 = acc[3] + acc[7];
  *sum = (t0 + t2) + (t1 + t3);
  *min = mn;
  *max = mx;
}

size_t CompactFiniteF64Scalar(const double* v, size_t n, double* out) {
  const double kInf = std::numeric_limits<double>::infinity();
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] != kInf) out[count++] = v[i];
  }
  return count;
}

double LabelMergeScalar(const uint32_t* ah, const double* ad, size_t an,
                        const uint32_t* bh, const double* bd, size_t bn) {
  double best = std::numeric_limits<double>::infinity();
  size_t i = 0, j = 0;
  while (i < an && j < bn) {
    if (ah[i] == bh[j]) {
      const double d = ad[i] + bd[j];
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (ah[i] < bh[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

const KernelTable kScalarTable = {
    "scalar",          ExtractInRangeScalar, CountInRangeScalar,
    MaxU8Scalar,       MinU8Scalar,          AggregateF64Scalar,
    CompactFiniteF64Scalar, LabelMergeScalar,
};

}  // namespace

const KernelTable* ScalarKernels() { return &kScalarTable; }

}  // namespace simd
}  // namespace dsig
