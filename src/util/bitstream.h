// Bit-granular writer/reader used by the signature encoders.
//
// Signatures store variable-length category codes (often a single bit per
// object after compression), so all encoded index pages are addressed at bit
// granularity. BitWriter appends into a growable byte buffer; BitReader walks
// a finished buffer and supports random repositioning, which the signature
// store uses to jump to per-row checkpoints.
#ifndef DSIG_UTIL_BITSTREAM_H_
#define DSIG_UTIL_BITSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsig {

// Append-only bit sink. Bits are packed LSB-first within each byte so that
// writing then reading with the same widths round-trips.
class BitWriter {
 public:
  BitWriter() = default;

  // Appends the low `width` bits of `value` (width in [0, 64]).
  void WriteBits(uint64_t value, int width);

  // Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  // Appends a unary code: `count` zeros followed by a one.
  void WriteUnary(int count);

  // Number of bits written so far.
  size_t size_bits() const { return size_bits_; }

  // Finished buffer; trailing bits of the last byte are zero.
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  // Moves the underlying buffer out; the writer is empty afterwards.
  std::vector<uint8_t> TakeBytes();

  void Clear() {
    bytes_.clear();
    size_bits_ = 0;
  }

 private:
  std::vector<uint8_t> bytes_;
  size_t size_bits_ = 0;
};

// Sequential bit source over a byte buffer produced by BitWriter.
class BitReader {
 public:
  // `data` must outlive the reader. `size_bits` bounds reads.
  BitReader(const uint8_t* data, size_t size_bits)
      : data_(data), size_bits_(size_bits) {}

  explicit BitReader(const std::vector<uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size() * 8) {}

  // Reads `width` bits (width in [0, 64]). It is a checked error to read past
  // the end of the stream.
  uint64_t ReadBits(int width);

  bool ReadBit() { return ReadBits(1) != 0; }

  // Reads a unary code written by BitWriter::WriteUnary; returns the number
  // of zeros before the terminating one.
  int ReadUnary();

  // Absolute bit position of the next read.
  size_t position() const { return position_; }

  // Repositions the next read to absolute bit offset `position`.
  void Seek(size_t position);

  size_t size_bits() const { return size_bits_; }

  bool AtEnd() const { return position_ >= size_bits_; }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t position_ = 0;
};

}  // namespace dsig

#endif  // DSIG_UTIL_BITSTREAM_H_
