// Bit-granular writer/reader used by the signature encoders.
//
// Signatures store variable-length category codes (often a single bit per
// object after compression), so all encoded index pages are addressed at bit
// granularity. BitWriter appends into a growable byte buffer; BitReader walks
// a finished buffer and supports random repositioning, which the signature
// store uses to jump to per-row checkpoints.
//
// Both sides run at word granularity internally while keeping the byte
// format unchanged: bits are packed LSB-first within each byte, bytes in
// stream order (so bit i of the stream is bit (i & 7) of byte (i >> 3)).
// The writer accumulates into a 64-bit word and flushes whole words; the
// reader extracts with unaligned 64-bit loads and scans unary runs a word at
// a time. The per-bit/per-word primitives are defined inline here — they are
// the innermost loop of every signature decode. See ARCHITECTURE.md ("Codec
// kernels") for the full contract.
#ifndef DSIG_UTIL_BITSTREAM_H_
#define DSIG_UTIL_BITSTREAM_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/logging.h"

namespace dsig {

namespace bitstream_internal {

// Low-`width` bitmask; width in [0, 64].
inline uint64_t LowMask(int width) {
  return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

}  // namespace bitstream_internal

// Append-only bit sink. Bits are packed LSB-first within each byte so that
// writing then reading with the same widths round-trips.
class BitWriter {
 public:
  BitWriter() = default;

  // Appends the low `width` bits of `value` (width in [0, 64]). Bits of
  // `value` above `width` are ignored.
  void WriteBits(uint64_t value, int width) {
    DSIG_CHECK_GE(width, 0);
    DSIG_CHECK_LE(width, 64);
    if (width == 0) return;
    if (materialized_) Unmaterialize();
    value &= bitstream_internal::LowMask(width);
    acc_ |= value << acc_bits_;
    if (acc_bits_ + width >= 64) {
      FlushWord(acc_);
      const int consumed = 64 - acc_bits_;
      acc_ = consumed < 64 ? value >> consumed : 0;
      acc_bits_ = width - consumed;
    } else {
      acc_bits_ += width;
    }
    size_bits_ += static_cast<size_t>(width);
  }

  // Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  // Appends a unary code: `count` zeros followed by a one.
  void WriteUnary(int count);

  // Pre-sizes the underlying buffer for `bits` total bits.
  void Reserve(size_t bits) { bytes_.reserve((bits + 7) / 8); }

  // Number of bits written so far.
  size_t size_bits() const { return size_bits_; }

  // Finished buffer; trailing bits of the last byte are zero. Writing after
  // this call is allowed and keeps the stream consistent.
  const std::vector<uint8_t>& bytes() const {
    Materialize();
    return bytes_;
  }

  // Moves the underlying buffer out; the writer is empty afterwards.
  std::vector<uint8_t> TakeBytes();

  void Clear() {
    bytes_.clear();
    acc_ = 0;
    acc_bits_ = 0;
    size_bits_ = 0;
    materialized_ = false;
  }

 private:
  // Appends the 8 bytes of `word` (stream order = little-endian bit order).
  void FlushWord(uint64_t word) {
    const size_t offset = bytes_.size();
    bytes_.resize(offset + 8);
    // Stream byte k of the word is its bits [8k, 8k+8) — a little-endian
    // store, which the compiler collapses to a single 8-byte write.
    for (int i = 0; i < 8; ++i) {
      bytes_[offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(word >> (8 * i));
    }
  }

  // Undoes Materialize(): drops the partially-filled tail bytes appended for
  // bytes() so writes can keep accumulating into acc_.
  void Unmaterialize();
  // Appends the pending accumulator bytes so bytes_ reflects every written
  // bit; const because observing the buffer must not change the stream.
  void Materialize() const;

  // bytes_ holds all *flushed* whole words; acc_ holds the pending tail bits
  // [size_bits_ - acc_bits_, size_bits_), which always start on a 64-bit
  // boundary of the stream. Bits of acc_ at and above acc_bits_ are zero.
  mutable std::vector<uint8_t> bytes_;
  mutable bool materialized_ = false;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;  // in [0, 64)
  size_t size_bits_ = 0;
};

// Sequential bit source over a byte buffer produced by BitWriter.
class BitReader {
 public:
  // `data` must outlive the reader. `size_bits` bounds reads; bytes beyond
  // ceil(size_bits / 8) are never touched.
  BitReader(const uint8_t* data, size_t size_bits)
      : data_(data), size_bits_(size_bits), num_bytes_((size_bits + 7) / 8) {}

  explicit BitReader(const std::vector<uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size() * 8) {}

  // Reads `width` bits (width in [0, 64]). It is a checked error to read past
  // the end of the stream.
  uint64_t ReadBits(int width) {
    DSIG_CHECK_GE(width, 0);
    DSIG_CHECK_LE(width, 64);
    DSIG_CHECK_LE(position_ + static_cast<size_t>(width), size_bits_);
    if (width == 0) return 0;
    const size_t byte = position_ >> 3;
    const int shift = static_cast<int>(position_ & 7);
    uint64_t value = LoadWord(byte) >> shift;
    const int got = 64 - shift;  // >= 57
    if (width > got) value |= LoadWord(byte + 8) << got;
    value &= bitstream_internal::LowMask(width);
    position_ += static_cast<size_t>(width);
    return value;
  }

  bool ReadBit() { return ReadBits(1) != 0; }

  // Reads a unary code written by BitWriter::WriteUnary; returns the number
  // of zeros before the terminating one. It is a checked error for the
  // stream to end before the terminator.
  int ReadUnary();

  // Non-aborting ReadUnary for untrusted bitstreams: false when the stream
  // ends (or was truncated to all zeros) before the terminating one, with
  // the position left unchanged.
  bool TryReadUnary(int* zeros);

  // Returns the next `width` bits (width in [0, 64]) without advancing.
  // Bits past the end of the stream read as zero — including any stray bits
  // in the final byte beyond size_bits().
  uint64_t PeekBits(int width) const {
    DSIG_CHECK_GE(width, 0);
    DSIG_CHECK_LE(width, 64);
    if (width == 0 || position_ >= size_bits_) return 0;
    const size_t byte = position_ >> 3;
    const int shift = static_cast<int>(position_ & 7);
    uint64_t value = LoadWord(byte) >> shift;
    const int got = 64 - shift;
    if (width > got) value |= LoadWord(byte + 8) << got;
    // Clamp to both the requested width and the end of the stream, so stray
    // bits in the final byte (possible on untrusted buffers) read as zero.
    const size_t remaining = size_bits_ - position_;
    const int keep =
        remaining < static_cast<size_t>(width) ? static_cast<int>(remaining)
                                               : width;
    return value & bitstream_internal::LowMask(keep);
  }

  // Advances past `width` bits previously examined with PeekBits. It is a
  // checked error to skip past the end of the stream.
  void Skip(int width) {
    DSIG_CHECK_GE(width, 0);
    DSIG_CHECK_LE(position_ + static_cast<size_t>(width), size_bits_);
    position_ += static_cast<size_t>(width);
  }

  // Consumes consecutive zero bits from the current position, stopping at
  // the first one bit (left unconsumed), after `cap` zeros, or at the end of
  // the stream; returns the number of zeros consumed. Scans a word at a time.
  int ReadZeros(int cap);

  // Absolute bit position of the next read.
  size_t position() const { return position_; }

  // Repositions the next read to absolute bit offset `position`.
  void Seek(size_t position) {
    DSIG_CHECK_LE(position, size_bits_);
    position_ = position;
  }

  size_t size_bits() const { return size_bits_; }

  bool AtEnd() const { return position_ >= size_bits_; }

 private:
  // Unaligned little-endian 64-bit load at `byte_index`, zero-padded past
  // the end of the buffer.
  uint64_t LoadWord(size_t byte_index) const {
    uint64_t word = 0;
    if (byte_index + 8 <= num_bytes_) {
      // Constant-size copy: compiles to a single unaligned 8-byte load.
      std::memcpy(&word, data_ + byte_index, 8);
    } else if (byte_index < num_bytes_) {
      std::memcpy(&word, data_ + byte_index, num_bytes_ - byte_index);
    }
    if constexpr (std::endian::native == std::endian::big) {
      word = __builtin_bswap64(word);
    }
    return word;
  }

  const uint8_t* data_;
  size_t size_bits_;
  size_t num_bytes_;
  size_t position_ = 0;
};

}  // namespace dsig

#endif  // DSIG_UTIL_BITSTREAM_H_
