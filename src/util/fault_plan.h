// Deterministic I/O fault plans shared by every file-touching layer
// (io/binary_io, core/update_log): corruption tests describe *where* a read
// or write must fail, and the layer under test injects the fault beneath its
// own checksum/validation machinery — exactly as a failing disk or torn
// write would present it. Lives in util so core code (the write-ahead update
// log) can use the plans without depending on the io layer.
#ifndef DSIG_UTIL_FAULT_PLAN_H_
#define DSIG_UTIL_FAULT_PLAN_H_

#include <cstdint>

namespace dsig {

// No fault at this offset.
inline constexpr uint64_t kNoFault = ~uint64_t{0};

// Deterministic corruption applied beneath a reader's checksum layer.
// Offsets are absolute file positions.
struct ReadFaultPlan {
  uint64_t truncate_at = kNoFault;  // simulated EOF at this byte offset
  uint64_t flip_byte = kNoFault;    // XOR flip_mask into the byte here
  uint8_t flip_mask = 0x01;
  uint64_t fail_at = kNoFault;      // hard I/O error when reading this byte
};

// Deterministic write failure (e.g. a full disk after N bytes, or a process
// killed mid-write: everything before `fail_at` reaches the file, nothing
// after).
struct WriteFaultPlan {
  uint64_t fail_at = kNoFault;  // writes reaching this byte offset fail
};

}  // namespace dsig

#endif  // DSIG_UTIL_FAULT_PLAN_H_
