// Fixed-width hexadecimal ids.
//
// Trace ids travel the DSRV wire as raw u64 (serve/protocol.h) but appear
// to humans — slow-query log lines, dsig_tool output, grep pipelines — as
// 16 lowercase hex digits. One formatter/parser pair here so the loadgen
// that mints an id and the operator grepping for it in a trace file always
// agree on the spelling.
#ifndef DSIG_UTIL_HEXID_H_
#define DSIG_UTIL_HEXID_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dsig {

// "00c0ffee00c0ffee" — always 16 digits, lowercase.
inline std::string HexId(uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

// Accepts 1..16 hex digits (either case); false on anything else.
inline bool ParseHexId(std::string_view text, uint64_t* value) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t v = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    v = v << 4 | static_cast<uint64_t>(digit);
  }
  *value = v;
  return true;
}

}  // namespace dsig

#endif  // DSIG_UTIL_HEXID_H_
