#include "util/huffman.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "util/logging.h"

namespace dsig {
namespace {

struct TreeNode {
  uint64_t weight = 0;
  int left = -1;   // index into node pool, -1 for leaf
  int right = -1;  // index into node pool, -1 for leaf
  int symbol = -1;
};

}  // namespace

HuffmanCode::HuffmanCode(std::vector<int> lengths, std::vector<uint64_t> codes)
    : lengths_(std::move(lengths)), codes_(std::move(codes)) {
  BuildDecodeTrie();
  BuildDecodeTable();
}

HuffmanCode HuffmanCode::FromFrequencies(
    const std::vector<uint64_t>& frequencies) {
  DSIG_CHECK(!frequencies.empty());
  const int n = static_cast<int>(frequencies.size());
  if (n == 1) {
    // Degenerate alphabet: one symbol, one-bit code so the stream is
    // self-delimiting.
    return HuffmanCode({1}, {0});
  }

  std::vector<TreeNode> pool;
  pool.reserve(static_cast<size_t>(2 * n));
  // (weight, node index); ties broken by node index for determinism.
  using Entry = std::pair<uint64_t, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int s = 0; s < n; ++s) {
    // Zero-frequency symbols get weight 1 so they stay encodable without
    // perturbing the shape for realistic inputs.
    pool.push_back({std::max<uint64_t>(frequencies[s], 1), -1, -1, s});
    heap.push({pool.back().weight, s});
  }
  while (heap.size() > 1) {
    const Entry a = heap.top();
    heap.pop();
    const Entry b = heap.top();
    heap.pop();
    pool.push_back({a.first + b.first, a.second, b.second, -1});
    heap.push({pool.back().weight, static_cast<int>(pool.size()) - 1});
  }

  std::vector<int> lengths(static_cast<size_t>(n), 0);
  std::vector<uint64_t> codes(static_cast<size_t>(n), 0);
  // Iterative DFS assigning codes; bit k of the code is the k-th branch taken
  // from the root (LSB-first to match BitWriter).
  struct Frame {
    int node;
    uint64_t code;
    int depth;
  };
  std::vector<Frame> stack = {{heap.top().second, 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const TreeNode& node = pool[static_cast<size_t>(f.node)];
    if (node.symbol >= 0) {
      DSIG_CHECK_LE(f.depth, 64);
      lengths[static_cast<size_t>(node.symbol)] = f.depth;
      codes[static_cast<size_t>(node.symbol)] = f.code;
      continue;
    }
    stack.push_back({node.left, f.code, f.depth + 1});
    stack.push_back(
        {node.right, f.code | (uint64_t{1} << f.depth), f.depth + 1});
  }
  return HuffmanCode(std::move(lengths), std::move(codes));
}

HuffmanCode HuffmanCode::FromParts(std::vector<int> lengths,
                                   std::vector<uint64_t> codes) {
  DSIG_CHECK_EQ(lengths.size(), codes.size());
  DSIG_CHECK(!lengths.empty());
  return HuffmanCode(std::move(lengths), std::move(codes));
}

bool HuffmanCode::PartsAreValid(const std::vector<int>& lengths,
                                const std::vector<uint64_t>& codes) {
  if (lengths.empty() || lengths.size() != codes.size()) return false;
  // Re-run the trie construction with failure returns in place of the
  // CHECKs: a leaf landing on an interior node (or vice versa) means two
  // codes where one prefixes the other.
  std::vector<std::pair<int32_t, int32_t>> trie(1, {0, 0});
  for (size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len < 1 || len > 64) return false;
    const uint64_t code = codes[s];
    if (len < 64 && (code >> len) != 0) return false;
    int32_t node = 0;
    for (int i = 0; i < len; ++i) {
      const bool bit = (code >> i) & 1;
      // Take the slot by value: push_back below may reallocate.
      int32_t slot = bit ? trie[static_cast<size_t>(node)].second
                         : trie[static_cast<size_t>(node)].first;
      if (i + 1 == len) {
        if (slot != 0) return false;
        slot = -1 - static_cast<int32_t>(s);
      } else if (slot == 0) {
        trie.push_back({0, 0});
        slot = static_cast<int32_t>(trie.size()) - 1;
      } else if (slot < 0) {
        return false;  // walking through another symbol's leaf
      }
      (bit ? trie[static_cast<size_t>(node)].second
           : trie[static_cast<size_t>(node)].first) = slot;
      if (i + 1 < len) node = slot;
    }
  }
  return true;
}

HuffmanCode HuffmanCode::FixedLength(int num_symbols) {
  DSIG_CHECK_GT(num_symbols, 0);
  int bits = 1;
  while ((1 << bits) < num_symbols) ++bits;
  DSIG_CHECK_LE(bits, 32);
  std::vector<int> lengths(static_cast<size_t>(num_symbols), bits);
  std::vector<uint64_t> codes(static_cast<size_t>(num_symbols));
  for (int s = 0; s < num_symbols; ++s) {
    // Emit the symbol MSB-first so distinct symbols stay prefix-free even
    // when num_symbols is not a power of two.
    uint64_t code = 0;
    for (int i = 0; i < bits; ++i) {
      if ((s >> (bits - 1 - i)) & 1) code |= uint64_t{1} << i;
    }
    codes[static_cast<size_t>(s)] = code;
  }
  return HuffmanCode(std::move(lengths), std::move(codes));
}

HuffmanCode HuffmanCode::ReverseZeroPadding(int num_symbols) {
  DSIG_CHECK_GT(num_symbols, 0);
  DSIG_CHECK_LE(num_symbols, 64);
  const int m = num_symbols;
  if (m == 1) return HuffmanCode({1}, {0});
  std::vector<int> lengths(static_cast<size_t>(m));
  std::vector<uint64_t> codes(static_cast<size_t>(m));
  // Category m-1: "1". Category i (0 < i < m-1): m-1-i zeros then a one.
  // Category 0 completes the code space: m-1 zeros, no terminating one.
  for (int s = m - 1; s >= 1; --s) {
    const int zeros = m - 1 - s;
    lengths[static_cast<size_t>(s)] = zeros + 1;
    codes[static_cast<size_t>(s)] = uint64_t{1} << zeros;  // zeros then a 1
  }
  lengths[0] = m - 1;
  codes[0] = 0;
  return HuffmanCode(std::move(lengths), std::move(codes));
}

double HuffmanCode::AverageLength(
    const std::vector<uint64_t>& frequencies) const {
  DSIG_CHECK_EQ(frequencies.size(), lengths_.size());
  uint64_t total = 0;
  double weighted = 0;
  for (size_t s = 0; s < frequencies.size(); ++s) {
    total += frequencies[s];
    weighted += static_cast<double>(frequencies[s]) * lengths_[s];
  }
  if (total == 0) return 0;
  return weighted / static_cast<double>(total);
}

void HuffmanCode::Encode(int symbol, BitWriter* writer) const {
  DSIG_CHECK_GE(symbol, 0);
  DSIG_CHECK_LT(symbol, num_symbols());
  writer->WriteBits(codes_[static_cast<size_t>(symbol)],
                    lengths_[static_cast<size_t>(symbol)]);
}

int HuffmanCode::DecodeLongChecked(BitReader* reader) const {
  int symbol = -1;
  const bool decoded = DecodeLong(reader, &symbol);
  // Truncation aborts here instead of inside ReadBit; prefix-less bits abort
  // here instead of at the trie root check. Either way: abort, as before.
  DSIG_CHECK(decoded) << "bitstream truncated or follows no symbol's prefix";
  return symbol;
}

bool HuffmanCode::DecodeLong(BitReader* reader, int* symbol) const {
  if (rzp_shaped_) {
    // Reverse zero padding beyond the table window: symbol s >= 1 is
    // (m-1-s) zeros then a one; symbol 0 is m-1 zeros with no terminator.
    // One bounded word-scan replaces the per-bit trie walk, and the bound
    // makes an all-zero (corrupt) stream a clean failure instead of a crash.
    const int m = num_symbols();
    const int zeros = reader->ReadZeros(m - 1);
    if (zeros == m - 1) {
      *symbol = 0;
      return true;
    }
    if (reader->AtEnd()) return false;  // truncated mid-run
    reader->Skip(1);  // the terminating one — ReadZeros stopped on it
    *symbol = m - 1 - zeros;
    return true;
  }
  int32_t node = 0;
  while (true) {
    if (reader->AtEnd()) return false;
    const auto& [child0, child1] = trie_[static_cast<size_t>(node)];
    const int32_t next = reader->ReadBit() ? child1 : child0;
    if (next == 0) return false;  // bits follow no symbol's prefix
    if (next < 0) {
      *symbol = -1 - next;
      return true;
    }
    node = next;
  }
}

void HuffmanCode::BuildDecodeTable() {
  const int m = num_symbols();
  // Detect the reverse-zero-padding shape (paper §5.2) — the common codec
  // configuration — so codes longer than the table window can decode with a
  // bounded zero-scan instead of the trie. m <= 64 bounds the shift below.
  rzp_shaped_ = m >= 2 && m <= 64;
  for (int s = m - 1; s >= 1 && rzp_shaped_; --s) {
    const int zeros = m - 1 - s;
    rzp_shaped_ = lengths_[static_cast<size_t>(s)] == zeros + 1 &&
                  codes_[static_cast<size_t>(s)] == uint64_t{1} << zeros;
  }
  if (rzp_shaped_) {
    rzp_shaped_ = lengths_[0] == m - 1 && codes_[0] == 0;
  }
  // Symbols are stored as uint16 in the table; an absurdly large alphabet
  // (never produced by this library) simply keeps the trie-only decode.
  if (m > std::numeric_limits<uint16_t>::max()) return;
  table_.assign(size_t{1} << kDecodeTableBits, DecodeSlot{0, 0});
  for (int s = 0; s < m; ++s) {
    const int len = lengths_[static_cast<size_t>(s)];
    if (len > kDecodeTableBits) continue;
    // Every window extending this code decodes to this symbol. The windows
    // are exactly code + k * 2^len; prefix-freeness (checked by the trie
    // build) guarantees no two codes claim the same slot.
    const uint64_t step = uint64_t{1} << len;
    for (uint64_t w = codes_[static_cast<size_t>(s)]; w < table_.size();
         w += step) {
      table_[w] = DecodeSlot{static_cast<uint16_t>(s),
                             static_cast<uint8_t>(len)};
    }
  }
}

void HuffmanCode::BuildDecodeTrie() {
  trie_.assign(1, {0, 0});
  // Reserve the worst case so push_back below never reallocates while a
  // reference into the trie is live.
  size_t max_nodes = 1;
  for (int len : lengths_) max_nodes += static_cast<size_t>(len);
  trie_.reserve(max_nodes);
  for (int s = 0; s < num_symbols(); ++s) {
    int32_t node = 0;
    const int len = lengths_[static_cast<size_t>(s)];
    const uint64_t code = codes_[static_cast<size_t>(s)];
    for (int i = 0; i < len; ++i) {
      const bool bit = (code >> i) & 1;
      int32_t& slot = bit ? trie_[static_cast<size_t>(node)].second
                          : trie_[static_cast<size_t>(node)].first;
      if (i + 1 == len) {
        DSIG_CHECK_EQ(slot, 0);  // prefix-freeness
        slot = -1 - s;
      } else {
        if (slot == 0) {
          trie_.push_back({0, 0});
          slot = static_cast<int32_t>(trie_.size()) - 1;
        }
        DSIG_CHECK_GT(slot, 0);
        node = slot;
      }
    }
  }
}

}  // namespace dsig
