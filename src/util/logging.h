// Lightweight logging and runtime-check macros.
//
// The library does not use exceptions (see DESIGN.md); invariant violations
// terminate the process with a diagnostic instead. Typical use:
//
//   DSIG_CHECK(node < graph.num_nodes()) << "node id out of range: " << node;
//   DSIG_LOG(Info) << "built index with " << n << " rows";
#ifndef DSIG_UTIL_LOGGING_H_
#define DSIG_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace dsig {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Minimum severity that is actually emitted to stderr. Defaults to kInfo.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

// Parses a severity name ("debug".."fatal", case-insensitive, or the single
// letters d/i/w/e/f). Returns false and leaves *severity alone on unknown
// input. This is what tools use to wire a --log-level flag through.
bool ParseLogSeverity(const std::string& name, LogSeverity* severity);

namespace internal_logging {

// Accumulates one log line and emits it (and possibly aborts) on destruction.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  LogSeverity severity_;
};

// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns a streamed LogMessage chain into a void expression so it can sit in
// the false branch of the check macros' ternary. operator& binds looser than
// operator<<, so the whole stream chain is evaluated first.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace dsig

#define DSIG_LOG(severity)                                \
  ::dsig::internal_logging::LogMessage(__FILE__, __LINE__, \
                                       ::dsig::LogSeverity::k##severity)

// Fatal unless `condition` holds. Always enabled (including release builds):
// the cost model of this library depends on structural invariants whose
// violation would silently corrupt results.
#define DSIG_CHECK(condition)                                             \
  (condition) ? (void)0                                                   \
              : ::dsig::internal_logging::Voidify() &                     \
                    ::dsig::internal_logging::LogMessage(                 \
                        __FILE__, __LINE__, ::dsig::LogSeverity::kFatal)  \
                        << "Check failed: " #condition " "

#define DSIG_CHECK_OP(op, a, b)                                           \
  ((a)op(b)) ? (void)0                                                    \
             : ::dsig::internal_logging::Voidify() &                      \
                   ::dsig::internal_logging::LogMessage(                  \
                       __FILE__, __LINE__, ::dsig::LogSeverity::kFatal)   \
                       << "Check failed: " #a " " #op " " #b " (" << (a)  \
                       << " vs " << (b) << ") "

#define DSIG_CHECK_EQ(a, b) DSIG_CHECK_OP(==, a, b)
#define DSIG_CHECK_NE(a, b) DSIG_CHECK_OP(!=, a, b)
#define DSIG_CHECK_LT(a, b) DSIG_CHECK_OP(<, a, b)
#define DSIG_CHECK_LE(a, b) DSIG_CHECK_OP(<=, a, b)
#define DSIG_CHECK_GT(a, b) DSIG_CHECK_OP(>, a, b)
#define DSIG_CHECK_GE(a, b) DSIG_CHECK_OP(>=, a, b)

#endif  // DSIG_UTIL_LOGGING_H_
