// Shared work-stealing thread pool and data-parallel loops.
//
// Construction runs one Dijkstra per object plus two full sweeps over all
// nodes (§5.2); batch query serving wants many independent queries in
// flight. Both reduce to "run N independent work items across the hardware",
// which is what this pool provides:
//
//  * ThreadPool — fixed worker set, one deque per worker. Submitted tasks
//    are distributed round-robin; an idle worker first drains its own deque
//    (front), then *steals* from the back of a sibling's deque, so uneven
//    item costs (e.g. Dijkstras from central vs. peripheral objects) balance
//    without a central queue becoming the bottleneck.
//  * ParallelFor / ParallelForChunks — blocking data-parallel loops. The
//    CALLING thread participates: it claims and runs chunks alongside the
//    workers, which (a) keeps it busy instead of blocked and (b) makes
//    nested ParallelFor calls deadlock-free — an inner loop issued from a
//    worker always makes progress on the caller itself even when every
//    other worker is busy.
//
// Exceptions thrown by loop bodies cancel the remaining chunks (best
// effort), propagate to the ParallelFor caller, and leave the pool usable.
//
// Determinism contract: chunk boundaries depend only on the item count and
// the pool size, and the signature builder only merges chunk results with
// commutative operations (integer sums, max), so build outputs are
// byte-identical for every thread count — test-enforced by
// tests/parallel_build_test.cc.
//
// Pool activity accumulates in process-wide ThreadPoolTotals (same pattern
// as the buffer-pool totals in obs/metrics.h); obs publishes them to the
// metrics registry as "pool.*" counters.
#ifndef DSIG_UTIL_THREAD_POOL_H_
#define DSIG_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dsig {

// Process-wide pool activity, charged by every ThreadPool instance with
// relaxed atomic adds (workers on different cores bump them concurrently).
struct ThreadPoolTotals {
  std::atomic<uint64_t> tasks_run{0};      // submitted tasks executed
  std::atomic<uint64_t> steals{0};         // tasks taken from a sibling deque
  std::atomic<uint64_t> parallel_fors{0};  // blocking loops executed
  std::atomic<uint64_t> chunks_run{0};     // loop chunks executed
};
ThreadPoolTotals& GlobalThreadPoolTotals();

class ThreadPool {
 public:
  // 0 = one worker per hardware thread (at least one).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a fire-and-forget task.
  void Run(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  // Runs fn(i) for every i in [0, n), blocking until all complete. The
  // calling thread participates. Rethrows the first exception.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Chunked variant: fn(begin, end) over disjoint ranges covering [0, n).
  // Each chunk holds at least min_grain items (except possibly the last
  // pattern of an uneven split). Chunk boundaries are a pure function of
  // (n, min_grain, num_threads()) — see the determinism contract above.
  void ParallelForChunks(size_t n, size_t min_grain,
                         const std::function<void(size_t, size_t)>& fn);

  // Lazily-created process-wide pool sized to the hardware. Never destroyed
  // (workers are joined at process exit by the OS), so it is safe to use
  // from static destructors the same way the metrics registry is.
  static ThreadPool& Global();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  // Pops a task: own deque front first, then steal from siblings' backs.
  bool TryPop(size_t self, std::function<void()>* task);
  void WorkerLoop(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;   // workers sleep here
  std::condition_variable drain_cv_;  // Wait() sleeps here
  size_t queued_ = 0;    // tasks sitting in deques (guarded by wake_mu_)
  size_t in_flight_ = 0; // queued + currently executing (guarded by wake_mu_)
  bool stop_ = false;

  std::atomic<size_t> next_queue_{0};  // round-robin submission cursor
};

}  // namespace dsig

#endif  // DSIG_UTIL_THREAD_POOL_H_
