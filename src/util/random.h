// Deterministic pseudo-random number generation for generators and tests.
//
// A small xoshiro256** engine: all workload generation in this repository is
// seeded explicitly so every experiment is reproducible bit-for-bit.
#ifndef DSIG_UTIL_RANDOM_H_
#define DSIG_UTIL_RANDOM_H_

#include <cstdint>

#include "util/logging.h"

namespace dsig {

// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
// seeded via splitmix64 so that low-entropy seeds still produce good streams.
class Random {
 public:
  explicit Random(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform over the full 64-bit range.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform over [0, bound). `bound` must be positive.
  uint64_t NextUint64(uint64_t bound) {
    DSIG_CHECK_GT(bound, 0u);
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used in this library (< 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextUint64()) * bound) >> 64);
  }

  // Uniform over [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    DSIG_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform over [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform over [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + NextDouble() * (hi - lo);
  }

  // Bernoulli trial with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace dsig

#endif  // DSIG_UTIL_RANDOM_H_
