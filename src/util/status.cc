#include "util/status.h"

namespace dsig {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace dsig
