// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding persisted index sections against truncation and bit rot.
// Chosen over plain CRC-32 for its better Hamming distance at the block sizes
// persistence writes; software slice-by-one table implementation (no SSE4.2
// dependency), plenty fast for load-time validation.
#ifndef DSIG_UTIL_CRC32C_H_
#define DSIG_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dsig {

// Extends a running CRC-32C with `size` bytes. Start a fresh computation with
// `crc = 0`; the returned value is the finished checksum (the init/final
// XOR-with-ones is handled internally, so values compose:
// Crc32c(a+b) == Crc32cExtend(Crc32cExtend(0, a), b)).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace dsig

#endif  // DSIG_UTIL_CRC32C_H_
