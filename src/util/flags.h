// Minimal command-line flag parsing for benches and examples.
//
// Accepts "--name=value" and "--name value" forms. Unknown flags are kept so
// binaries can forward them (e.g., to google-benchmark). Typical use:
//
//   dsig::Flags flags(argc, argv);
//   const int nodes = static_cast<int>(flags.GetInt("nodes", 20000));
#ifndef DSIG_UTIL_FLAGS_H_
#define DSIG_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace dsig {

class Flags {
 public:
  Flags() = default;
  Flags(int argc, char** argv) { Parse(argc, argv); }

  // Parses argv; later occurrences of a flag override earlier ones.
  void Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  // "--flag" with no value, "true"/"1" => true; "false"/"0" => false.
  bool GetBool(const std::string& name, bool default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dsig

#endif  // DSIG_UTIL_FLAGS_H_
