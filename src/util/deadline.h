// Request deadlines and their thread-local propagation.
//
// A serving system must bound how long any single request can hold a worker:
// the front-end (serve/) stamps every admitted request with a Deadline, and
// the query loops underneath (query/*, SortByDistance's refinement,
// RunDijkstraBounded) check it at phase boundaries, abandoning work and
// returning a typed partial result once it passes.
//
// Propagation is ambient rather than parameterized: a DeadlineScope pins the
// deadline for the current thread, and DeadlineExpired() consults it. This
// keeps the dozens of existing query entry points signature-stable — code
// that never installs a scope sees an infinite deadline and behaves exactly
// as before. The cost of a check is one steady_clock read, and only when a
// finite deadline is actually installed; callers in tight loops additionally
// throttle (check every N iterations).
//
// Internal computations whose results outlive the request (e.g. the memoized
// decode-failure fallback rows in SignatureIndex) must shield themselves
// with DeadlineScope(Deadline::Infinite()) — a deadline-truncated value must
// never be cached.
#ifndef DSIG_UTIL_DEADLINE_H_
#define DSIG_UTIL_DEADLINE_H_

#include <cstdint>

namespace dsig {

class Deadline {
 public:
  // Default-constructed deadlines never expire.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  // Expires `ms` milliseconds from now (clamped to now for ms <= 0, i.e.
  // already expired).
  static Deadline AfterMillis(double ms);

  // Expires at an absolute steady-clock nanosecond stamp (see NowNanos).
  static Deadline AtNanos(uint64_t ns) { return Deadline(ns); }

  bool infinite() const { return ns_ == kInfiniteNanos; }
  bool expired() const { return !infinite() && NowNanos() >= ns_; }

  // Milliseconds until expiry; <= 0 when expired, a very large value when
  // infinite.
  double remaining_millis() const;

  uint64_t raw_nanos() const { return ns_; }

  // Monotonic nanoseconds (steady_clock), the time base deadlines live on.
  static uint64_t NowNanos();

 private:
  static constexpr uint64_t kInfiniteNanos = ~uint64_t{0};
  explicit Deadline(uint64_t ns) : ns_(ns) {}
  uint64_t ns_ = kInfiniteNanos;
};

// The calling thread's ambient deadline (infinite unless a DeadlineScope is
// live).
const Deadline& CurrentDeadline();

// Installs `deadline` as the thread's ambient deadline for the scope's
// lifetime, restoring the previous one on destruction (scopes nest; an inner
// scope may tighten or — for cache-filling shields — loosen).
class DeadlineScope {
 public:
  explicit DeadlineScope(const Deadline& deadline);
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;
  ~DeadlineScope();

 private:
  Deadline saved_;
};

// True when the ambient deadline has passed. Free (no clock read) when the
// ambient deadline is infinite, so instrumented loops cost nothing for
// callers that never set one.
bool DeadlineExpired();

// Test seam: force DeadlineExpired() to start returning true after `n` more
// true clock evaluations on this thread (n = 0 -> the very next check), so
// mid-query expiry is deterministic. Only applies while a *finite* ambient
// deadline is installed, mirroring production. Negative disables (default).
void SetDeadlineCheckFailAfter(int n);

}  // namespace dsig

#endif  // DSIG_UTIL_DEADLINE_H_
