#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "core/update_log.h"
#include "obs/bench_report.h"
#include "util/deadline.h"
#include "util/random.h"
#include "util/simd/simd.h"

namespace dsig {
namespace serve {
namespace {

bool SendAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Returns false on error/EOF; sets *timed_out when the failure was the
// receive timeout elapsing.
bool RecvAll(int fd, uint8_t* data, size_t len, bool* timed_out) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (timed_out != nullptr) *timed_out = true;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ServeClient::Connect(uint16_t port, double timeout_ms) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>(
        std::fmod(timeout_ms, 1000.0) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect: " + err);
  }
  fd_ = fd;
  return Status::Ok();
}

StatusOr<Response> ServeClient::Call(const Request& request, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (fd_ < 0) return Status::IoError("Call: not connected");

  std::vector<uint8_t> out;
  EncodeRequest(request, &out);
  if (!SendAll(fd_, out.data(), out.size())) {
    Close();
    return Status::IoError("Call: send failed");
  }

  uint8_t header[kFrameHeaderBytes];
  bool rx_timeout = false;
  if (!RecvAll(fd_, header, sizeof(header), &rx_timeout)) {
    // Timed-out or broken either way the stream is desynchronized: a late
    // response must never be taken for the next request's answer.
    Close();
    if (rx_timeout && timed_out != nullptr) *timed_out = true;
    return Status::IoError(rx_timeout ? "Call: receive timeout"
                                      : "Call: connection broken");
  }
  uint32_t payload_len = 0;
  const Status header_status = CheckFrameHeader(header, &payload_len);
  if (!header_status.ok()) {
    Close();
    return header_status;
  }
  std::vector<uint8_t> payload(payload_len);
  rx_timeout = false;
  if (payload_len > 0 &&
      !RecvAll(fd_, payload.data(), payload_len, &rx_timeout)) {
    Close();
    if (rx_timeout && timed_out != nullptr) *timed_out = true;
    return Status::IoError("Call: truncated response");
  }
  StatusOr<Response> response = DecodeResponse(payload.data(), payload_len);
  if (!response.ok()) Close();
  return response;
}

namespace {

struct ThreadStats {
  LoadgenReport counts;  // percentile fields unused here
  std::vector<double> latencies_ms;
};

struct WorkloadShape {
  uint64_t num_nodes = 0;
  uint64_t num_objects = 0;
  double epsilon = 0;
};

Request MakeArrival(const LoadgenOptions& options, const WorkloadShape& shape,
                    uint32_t tenant_id, Random& rng, uint64_t id) {
  Request request;
  request.id = id;
  request.deadline_ms = options.deadline_ms;
  request.tenant_id = tenant_id;
  // End-to-end trace id, carried through the DSRV header and echoed back;
  // | 1 because 0 means "absent" on the wire.
  request.trace_id = rng.NextUint64() | 1;
  const double u = rng.NextDouble();
  if (u < options.update_fraction) {
    request.type = RequestType::kUpdate;
    request.update_op = UpdateRecord::kAddEdge;
    request.a = static_cast<uint32_t>(rng.NextUint64(shape.num_nodes));
    do {
      request.b = static_cast<uint32_t>(rng.NextUint64(shape.num_nodes));
    } while (request.b == request.a);
    request.weight = rng.NextDouble(1.0, 10.0);
    return request;
  }
  request.node = static_cast<uint32_t>(rng.NextUint64(shape.num_nodes));
  const double query_u = u - options.update_fraction;
  if (query_u < options.join_fraction) {
    request.type = RequestType::kJoin;
    request.epsilon = shape.epsilon;
  } else if (query_u <
             options.join_fraction +
                 (1.0 - options.update_fraction - options.join_fraction) / 3) {
    request.type = RequestType::kRange;
    request.epsilon = shape.epsilon;
  } else {
    request.type = RequestType::kKnn;
    request.k = options.knn_k;
    request.knn_type = static_cast<uint8_t>(1 + rng.NextUint64(3));
  }
  return request;
}

// Decorrelated jitter: sleep ~ U[base, 3 * previous sleep], clamped to the
// cap and floored by the server's RETRY_AFTER hint. Stepped exponential
// backoff re-synchronizes a shed storm at 2^k * base — every client that was
// shed together retries together; drawing from a range anchored to each
// client's own previous sleep spreads them out instead. `*prev_ms` carries
// the state across one arrival's retry chain.
double BackoffMillis(const LoadgenOptions& options, double hint,
                     double* prev_ms, Random& rng) {
  const double base = std::max(options.backoff_base_ms, 1.0);
  const double upper = std::max(base, 3.0 * *prev_ms);
  double sleep_ms = rng.NextDouble(base, upper);
  sleep_ms = std::min(sleep_ms, std::max(options.backoff_cap_ms, base));
  *prev_ms = sleep_ms;
  return std::max(hint, sleep_ms);
}

// Drives one arrival to a terminal outcome (answer, exhausted retries, or a
// terminal status). Returns via `stats`; latency is charged from the
// scheduled arrival instant.
void IssueArrival(const LoadgenOptions& options, ServeClient& client,
                  const Request& request, uint64_t scheduled_ns, Random& rng,
                  ThreadStats& stats) {
  ++stats.counts.arrivals;
  double prev_backoff_ms = options.backoff_base_ms;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    if (attempt > 0) ++stats.counts.retried;
    if (!client.connected()) {
      ++stats.counts.reconnects;
      if (!client.Connect(options.port, options.timeout_ms).ok()) {
        // Server gone (crashed or drained): terminal for this arrival.
        ++stats.counts.failed;
        return;
      }
    }
    bool timed_out = false;
    StatusOr<Response> result = client.Call(request, &timed_out);
    if (!result.ok()) {
      if (timed_out) {
        ++stats.counts.timeouts;
      } else {
        ++stats.counts.protocol_errors;
      }
      if (attempt == options.max_retries) {
        ++stats.counts.failed;
        return;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          BackoffMillis(options, 0, &prev_backoff_ms, rng)));
      continue;
    }
    const Response& response = *result;
    switch (response.status) {
      case ResponseStatus::kOk:
      case ResponseStatus::kDeadlineExceeded: {
        ++stats.counts.completed;
        if (response.status == ResponseStatus::kOk) {
          ++stats.counts.ok;
          if (request.type == RequestType::kUpdate) {
            ++stats.counts.updates_acked;
            stats.counts.max_acked_seq =
                std::max(stats.counts.max_acked_seq, response.update_seq);
          }
        } else {
          ++stats.counts.deadline_exceeded;
        }
        if (response.degradation != Degradation::kNone) {
          ++stats.counts.degraded;
        }
        stats.latencies_ms.push_back(
            static_cast<double>(Deadline::NowNanos() - scheduled_ns) / 1e6);
        return;
      }
      case ResponseStatus::kRetryAfter: {
        ++stats.counts.shed;
        if (attempt == options.max_retries) {
          ++stats.counts.failed;
          return;
        }
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            BackoffMillis(options, response.retry_after_ms, &prev_backoff_ms,
                          rng)));
        continue;
      }
      case ResponseStatus::kShuttingDown:
        ++stats.counts.shutting_down;
        ++stats.counts.failed;
        return;
      case ResponseStatus::kError:
        ++stats.counts.errors;
        ++stats.counts.failed;
        return;
    }
  }
}

void SenderLoop(const LoadgenOptions& options, const WorkloadShape& shape,
                const TenantLoad& tenant, double tenant_rate, int thread_index,
                uint64_t base_ns, ThreadStats& stats) {
  // Distinct, decorrelated stream per thread; 7919 is just a prime mixer.
  Random rng(options.seed + 7919ull * static_cast<uint64_t>(thread_index + 1));
  ServeClient client;
  (void)client.Connect(options.port, options.timeout_ms);

  const double per_thread_rate = tenant_rate / std::max(options.threads, 1);
  uint64_t next_id = static_cast<uint64_t>(thread_index) << 40;
  double t_s = 0;
  for (;;) {
    // Poisson arrivals: exponential inter-arrival times, scheduled against
    // the shared epoch so lateness is the server's, not the schedule's.
    t_s += -std::log(1.0 - rng.NextDouble()) / per_thread_rate;
    if (t_s >= options.duration_s) break;
    const uint64_t scheduled_ns =
        base_ns + static_cast<uint64_t>(t_s * 1e9);
    const uint64_t now_ns = Deadline::NowNanos();
    if (scheduled_ns > now_ns) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(scheduled_ns - now_ns));
    }
    const Request request =
        MakeArrival(options, shape, tenant.tenant_id, rng, ++next_id);
    IssueArrival(options, client, request, scheduled_ns, rng, stats);
  }
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

void WriteReportJson(const LoadgenOptions& options,
                     const LoadgenReport& report,
                     const std::vector<double>& sorted_ms) {
  obs::BenchReport bench("serve");
  bench.SetParam("rate", options.rate);
  bench.SetParam("threads", static_cast<double>(options.threads));
  bench.SetParam("duration_s", options.duration_s);
  bench.SetParam("deadline_ms", options.deadline_ms);
  bench.SetParam("update_fraction", options.update_fraction);
  bench.SetParam("seed", static_cast<double>(options.seed));
  bench.SetParam("simd_dispatch_level",
                 simd::SimdLevelName(simd::ActiveLevel()));

  obs::BenchReport::Point* point =
      bench.AddPoint("loadgen", "open_loop", std::to_string(options.rate));
  point->queries = report.completed;
  point->metrics["arrivals"] = static_cast<double>(report.arrivals);
  point->metrics["completed"] = static_cast<double>(report.completed);
  point->metrics["ok"] = static_cast<double>(report.ok);
  point->metrics["deadline_exceeded"] =
      static_cast<double>(report.deadline_exceeded);
  point->metrics["shed"] = static_cast<double>(report.shed);
  point->metrics["retried"] = static_cast<double>(report.retried);
  point->metrics["reconnects"] = static_cast<double>(report.reconnects);
  point->metrics["timeouts"] = static_cast<double>(report.timeouts);
  point->metrics["failed"] = static_cast<double>(report.failed);
  point->metrics["degraded"] = static_cast<double>(report.degraded);
  point->metrics["errors"] = static_cast<double>(report.errors);
  point->metrics["protocol_errors"] =
      static_cast<double>(report.protocol_errors);
  point->metrics["updates_acked"] = static_cast<double>(report.updates_acked);
  point->metrics["max_acked_seq"] = static_cast<double>(report.max_acked_seq);
  point->metrics["mean_ms"] = report.mean_ms;
  point->metrics["server_stats_ok"] = report.server_stats_ok ? 1.0 : 0.0;
  point->metrics["server_window_p50_ms"] = report.server_window_p50_ms;
  point->metrics["server_window_p99_ms"] = report.server_window_p99_ms;
  point->metrics["server_queued_p99_ms"] = report.server_queued_p99_ms;
  point->metrics["server_lifetime_p99_ms"] = report.server_lifetime_p99_ms;
  point->metrics["server_window_count"] =
      static_cast<double>(report.server_window_count);
  point->metrics["divergence_ms"] = report.divergence_ms;
  point->metrics["divergence_flagged"] =
      report.divergence_flagged ? 1.0 : 0.0;
  if (!sorted_ms.empty()) {
    point->has_latency = true;
    point->latency.count = sorted_ms.size();
    double sum = 0;
    for (const double v : sorted_ms) sum += v;
    point->latency.sum = sum;
    point->latency.min = sorted_ms.front();
    point->latency.max = sorted_ms.back();
    point->latency.p50 = Percentile(sorted_ms, 0.50);
    point->latency.p90 = Percentile(sorted_ms, 0.90);
    point->latency.p99 = Percentile(sorted_ms, 0.99);
  }
  // One point per tenant: retry/reconnect behavior and the latency tail the
  // isolation assertions read straight out of serve_report.json.
  for (const TenantLoadReport& t : report.tenants) {
    obs::BenchReport::Point* tenant_point =
        bench.AddPoint("loadgen_tenant", t.name,
                       std::to_string(t.tenant_id));
    tenant_point->queries = t.completed;
    tenant_point->metrics["tenant_id"] = static_cast<double>(t.tenant_id);
    tenant_point->metrics["arrivals"] = static_cast<double>(t.arrivals);
    tenant_point->metrics["completed"] = static_cast<double>(t.completed);
    tenant_point->metrics["ok"] = static_cast<double>(t.ok);
    tenant_point->metrics["deadline_exceeded"] =
        static_cast<double>(t.deadline_exceeded);
    tenant_point->metrics["shed"] = static_cast<double>(t.shed);
    tenant_point->metrics["retried"] = static_cast<double>(t.retried);
    tenant_point->metrics["reconnects"] = static_cast<double>(t.reconnects);
    tenant_point->metrics["timeouts"] = static_cast<double>(t.timeouts);
    tenant_point->metrics["failed"] = static_cast<double>(t.failed);
    tenant_point->metrics["p50_ms"] = t.p50_ms;
    tenant_point->metrics["p99_ms"] = t.p99_ms;
    tenant_point->metrics["mean_ms"] = t.mean_ms;
  }
  bench.WriteFile(options.report_path);
}

}  // namespace

StatusOr<LoadgenReport> RunLoadgen(const LoadgenOptions& options) {
  if (options.rate <= 0 || options.duration_s <= 0 || options.threads <= 0) {
    return Status::InvalidArgument(
        "RunLoadgen: rate, duration_s, threads must be positive");
  }
  // Self-configure against the live deployment.
  WorkloadShape shape;
  {
    ServeClient probe;
    Status connected = probe.Connect(options.port, options.timeout_ms);
    if (!connected.ok()) return connected;
    Request ping;
    ping.type = RequestType::kPing;
    ping.id = 1;
    StatusOr<Response> pong = probe.Call(ping);
    if (!pong.ok()) return pong.status();
    shape.num_nodes = pong->num_nodes;
    shape.num_objects = pong->num_objects;
    shape.epsilon =
        options.epsilon > 0 ? options.epsilon : pong->suggested_epsilon;
  }
  if (shape.num_nodes == 0) {
    return Status::InvalidArgument("RunLoadgen: server reports 0 nodes");
  }

  // One open-loop generator per tenant, `threads` senders each. The default
  // single-tenant run is just the one-entry case of the same machinery.
  std::vector<TenantLoad> tenants = options.tenants;
  const bool multi_tenant = !tenants.empty();
  if (tenants.empty()) {
    tenants.push_back({"default", 0, options.rate});
  }
  const size_t threads_per_tenant = static_cast<size_t>(options.threads);
  std::vector<ThreadStats> per_thread(tenants.size() * threads_per_tenant);
  std::vector<std::thread> senders;
  senders.reserve(per_thread.size());
  const uint64_t base_ns = Deadline::NowNanos();
  for (size_t t = 0; t < tenants.size(); ++t) {
    const double tenant_rate =
        tenants[t].rate > 0 ? tenants[t].rate : options.rate;
    for (size_t i = 0; i < threads_per_tenant; ++i) {
      const size_t slot = t * threads_per_tenant + i;
      senders.emplace_back([&, t, tenant_rate, slot] {
        SenderLoop(options, shape, tenants[t], tenant_rate,
                   static_cast<int>(slot), base_ns, per_thread[slot]);
      });
    }
  }
  for (std::thread& t : senders) t.join();

  LoadgenReport report;
  std::vector<double> latencies;
  for (const ThreadStats& stats : per_thread) {
    const LoadgenReport& c = stats.counts;
    report.arrivals += c.arrivals;
    report.completed += c.completed;
    report.ok += c.ok;
    report.deadline_exceeded += c.deadline_exceeded;
    report.shed += c.shed;
    report.retried += c.retried;
    report.reconnects += c.reconnects;
    report.timeouts += c.timeouts;
    report.shutting_down += c.shutting_down;
    report.errors += c.errors;
    report.protocol_errors += c.protocol_errors;
    report.failed += c.failed;
    report.degraded += c.degraded;
    report.updates_acked += c.updates_acked;
    report.max_acked_seq = std::max(report.max_acked_seq, c.max_acked_seq);
    latencies.insert(latencies.end(), stats.latencies_ms.begin(),
                     stats.latencies_ms.end());
  }
  if (multi_tenant) {
    for (size_t t = 0; t < tenants.size(); ++t) {
      TenantLoadReport tenant_report;
      tenant_report.name = tenants[t].name;
      tenant_report.tenant_id = tenants[t].tenant_id;
      std::vector<double> tenant_latencies;
      for (size_t i = 0; i < threads_per_tenant; ++i) {
        const ThreadStats& stats = per_thread[t * threads_per_tenant + i];
        const LoadgenReport& c = stats.counts;
        tenant_report.arrivals += c.arrivals;
        tenant_report.completed += c.completed;
        tenant_report.ok += c.ok;
        tenant_report.deadline_exceeded += c.deadline_exceeded;
        tenant_report.shed += c.shed;
        tenant_report.retried += c.retried;
        tenant_report.reconnects += c.reconnects;
        tenant_report.timeouts += c.timeouts;
        tenant_report.failed += c.failed;
        tenant_latencies.insert(tenant_latencies.end(),
                                stats.latencies_ms.begin(),
                                stats.latencies_ms.end());
      }
      std::sort(tenant_latencies.begin(), tenant_latencies.end());
      if (!tenant_latencies.empty()) {
        double sum = 0;
        for (const double v : tenant_latencies) sum += v;
        tenant_report.mean_ms =
            sum / static_cast<double>(tenant_latencies.size());
        tenant_report.p50_ms = Percentile(tenant_latencies, 0.50);
        tenant_report.p99_ms = Percentile(tenant_latencies, 0.99);
      }
      report.tenants.push_back(std::move(tenant_report));
    }
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    double sum = 0;
    for (const double v : latencies) sum += v;
    report.mean_ms = sum / static_cast<double>(latencies.size());
    report.max_ms = latencies.back();
    report.p50_ms = Percentile(latencies, 0.50);
    report.p99_ms = Percentile(latencies, 0.99);
  }
  report.actual_duration_s =
      static_cast<double>(Deadline::NowNanos() - base_ns) / 1e9;

  // Consistency check: ask the server what ITS windowed serve-path tail
  // looked like. Best-effort — the server may already be gone (crash legs
  // of the smoke harness), which leaves server_stats_ok false.
  {
    ServeClient probe;
    if (probe.Connect(options.port, options.timeout_ms).ok()) {
      Request stats;
      stats.type = RequestType::kStats;
      stats.id = 2;
      StatusOr<Response> answer = probe.Call(stats);
      if (answer.ok()) {
        report.server_stats_ok = true;
        report.server_window_p50_ms = answer->window.p50_ms;
        report.server_window_p99_ms = answer->window.p99_ms;
        report.server_queued_p99_ms = answer->window.queued_p99_ms;
        report.server_lifetime_p99_ms = answer->window.lifetime_p99_ms;
        report.server_window_count = answer->window.count;
        report.divergence_ms =
            report.p99_ms -
            (report.server_window_p99_ms + report.server_queued_p99_ms);
        // Residual latency the server can't account for, beyond measurement
        // noise: flag when it exceeds 10 ms AND half the client tail.
        report.divergence_flagged =
            report.divergence_ms > std::max(10.0, 0.5 * report.p99_ms);
      }
    }
  }

  if (!options.report_path.empty()) {
    WriteReportJson(options, report, latencies);
  }
  return report;
}

std::string FormatLoadgenSummary(const LoadgenReport& report) {
  std::ostringstream os;
  os << "LOADGEN_SUMMARY"
     << " arrivals=" << report.arrivals << " completed=" << report.completed
     << " ok=" << report.ok
     << " deadline_exceeded=" << report.deadline_exceeded
     << " shed=" << report.shed << " retried=" << report.retried
     << " reconnects=" << report.reconnects
     << " timeouts=" << report.timeouts
     << " shutting_down=" << report.shutting_down
     << " errors=" << report.errors
     << " protocol_errors=" << report.protocol_errors
     << " failed=" << report.failed << " degraded=" << report.degraded
     << " updates_acked=" << report.updates_acked
     << " max_acked_seq=" << report.max_acked_seq << " p50_ms=" << report.p50_ms
     << " p99_ms=" << report.p99_ms << " mean_ms=" << report.mean_ms
     << " max_ms=" << report.max_ms
     << " duration_s=" << report.actual_duration_s
     << " server_stats_ok=" << (report.server_stats_ok ? 1 : 0)
     << " server_window_p99_ms=" << report.server_window_p99_ms
     << " server_queued_p99_ms=" << report.server_queued_p99_ms
     << " server_lifetime_p99_ms=" << report.server_lifetime_p99_ms
     << " server_window_count=" << report.server_window_count
     << " divergence_ms=" << report.divergence_ms
     << " divergence_flagged=" << (report.divergence_flagged ? 1 : 0);
  for (const TenantLoadReport& t : report.tenants) {
    os << "\nTENANT_SUMMARY tenant=" << t.name << " tenant_id=" << t.tenant_id
       << " arrivals=" << t.arrivals << " completed=" << t.completed
       << " ok=" << t.ok << " deadline_exceeded=" << t.deadline_exceeded
       << " shed=" << t.shed << " retried=" << t.retried
       << " reconnects=" << t.reconnects << " timeouts=" << t.timeouts
       << " failed=" << t.failed << " p50_ms=" << t.p50_ms
       << " p99_ms=" << t.p99_ms << " mean_ms=" << t.mean_ms;
  }
  return os.str();
}

}  // namespace serve
}  // namespace dsig
