#include "serve/protocol.h"

#include <cstring>

namespace dsig {
namespace serve {
namespace {

// Little-endian scalar writers/readers, matching io/binary_io conventions.
void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Cursor over an untrusted payload: every read is bounds-checked.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    uint32_t r = 0;
    for (int i = 3; i >= 0; --i) r = r << 8 | data_[pos_ + i];
    pos_ += 4;
    *v = r;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    uint64_t r = 0;
    for (int i = 7; i >= 0; --i) r = r << 8 | data_[pos_ + i];
    pos_ += 8;
    *v = r;
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  size_t remaining() const { return size_ - pos_; }
  const uint8_t* cursor() const { return data_ + pos_; }
  void Skip(size_t n) { pos_ += n; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Reserves the 8-byte frame header, returning the offset where the payload
// starts so FinishFrame can backfill the length.
size_t BeginFrame(std::vector<uint8_t>* out) {
  PutU32(out, kFrameMagic);
  PutU32(out, 0);  // payload_len, patched by FinishFrame
  return out->size();
}

void FinishFrame(std::vector<uint8_t>* out, size_t payload_start) {
  const uint32_t len = static_cast<uint32_t>(out->size() - payload_start);
  (*out)[payload_start - 4] = static_cast<uint8_t>(len);
  (*out)[payload_start - 3] = static_cast<uint8_t>(len >> 8);
  (*out)[payload_start - 2] = static_cast<uint8_t>(len >> 16);
  (*out)[payload_start - 1] = static_cast<uint8_t>(len >> 24);
}

}  // namespace

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kPing: return "ping";
    case RequestType::kKnn: return "knn";
    case RequestType::kRange: return "range";
    case RequestType::kJoin: return "join";
    case RequestType::kUpdate: return "update";
    case RequestType::kStats: return "stats";
    case RequestType::kSlo: return "slo";
  }
  return "unknown";
}

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "OK";
    case ResponseStatus::kRetryAfter: return "RETRY_AFTER";
    case ResponseStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ResponseStatus::kShuttingDown: return "SHUTTING_DOWN";
    case ResponseStatus::kError: return "ERROR";
  }
  return "unknown";
}

const char* DegradationName(Degradation degradation) {
  switch (degradation) {
    case Degradation::kNone: return "none";
    case Degradation::kOverload: return "overload";
    case Degradation::kDecodeFault: return "decode_fault";
  }
  return "unknown";
}

Status CheckFrameHeader(const uint8_t header[kFrameHeaderBytes],
                        uint32_t* payload_len) {
  uint32_t magic = 0;
  for (int i = 3; i >= 0; --i) magic = magic << 8 | header[i];
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = len << 8 | header[4 + i];
  if (len > kMaxFrameBytes) {
    return Status::Corruption("frame length " + std::to_string(len) +
                              " exceeds limit");
  }
  *payload_len = len;
  return Status::Ok();
}

void EncodeRequest(const Request& request, std::vector<uint8_t>* out) {
  const size_t payload = BeginFrame(out);
  PutU8(out, static_cast<uint8_t>(request.type));
  PutU64(out, request.id);
  PutF64(out, request.deadline_ms);
  PutU32(out, request.node);
  PutU32(out, request.k);
  PutU8(out, request.knn_type);
  PutF64(out, request.epsilon);
  PutU8(out, request.update_op);
  PutU32(out, request.a);
  PutU32(out, request.b);
  PutF64(out, request.weight);
  PutU64(out, request.trace_id);
  PutU32(out, request.tenant_id);
  FinishFrame(out, payload);
}

StatusOr<Request> DecodeRequest(const uint8_t* payload, size_t size) {
  Reader in(payload, size);
  Request r;
  uint8_t type = 0;
  if (!in.ReadU8(&type) || !in.ReadU64(&r.id) || !in.ReadF64(&r.deadline_ms) ||
      !in.ReadU32(&r.node) || !in.ReadU32(&r.k) || !in.ReadU8(&r.knn_type) ||
      !in.ReadF64(&r.epsilon) || !in.ReadU8(&r.update_op) ||
      !in.ReadU32(&r.a) || !in.ReadU32(&r.b) || !in.ReadF64(&r.weight)) {
    return Status::Corruption("truncated request payload");
  }
  // Trace-id tail, appended after the original layout. A frame from a
  // pre-trace client ends exactly here (trace_id stays 0); a partial tail
  // is corruption, not a compat case.
  if (in.remaining() > 0 && !in.ReadU64(&r.trace_id)) {
    return Status::Corruption("truncated request trace id");
  }
  // Tenant tail, appended after the trace tail: a pre-tenant frame ends at
  // the trace boundary and maps to the default tenant.
  if (in.remaining() > 0 && !in.ReadU32(&r.tenant_id)) {
    return Status::Corruption("truncated request tenant id");
  }
  if (type < static_cast<uint8_t>(RequestType::kPing) ||
      type > static_cast<uint8_t>(RequestType::kSlo)) {
    return Status::InvalidArgument("unknown request type " +
                                   std::to_string(type));
  }
  r.type = static_cast<RequestType>(type);
  if (r.type == RequestType::kKnn && (r.knn_type < 1 || r.knn_type > 3)) {
    return Status::InvalidArgument("knn result type out of range");
  }
  return r;
}

void EncodeResponse(const Response& response, std::vector<uint8_t>* out) {
  const size_t payload = BeginFrame(out);
  PutU64(out, response.id);
  PutU8(out, static_cast<uint8_t>(response.status));
  PutU8(out, static_cast<uint8_t>(response.degradation));
  PutF64(out, response.retry_after_ms);

  PutU32(out, static_cast<uint32_t>(response.objects.size()));
  for (const uint32_t o : response.objects) PutU32(out, o);
  PutU32(out, static_cast<uint32_t>(response.distances.size()));
  for (const double d : response.distances) PutF64(out, d);
  PutU32(out, static_cast<uint32_t>(response.pair_left.size()));
  for (size_t i = 0; i < response.pair_left.size(); ++i) {
    PutU32(out, response.pair_left[i]);
    PutU32(out, response.pair_right[i]);
  }

  PutU64(out, response.update_seq);
  PutU64(out, response.rows_rewritten);
  PutU64(out, response.num_nodes);
  PutU64(out, response.num_objects);
  PutF64(out, response.suggested_epsilon);

  PutU32(out, static_cast<uint32_t>(response.text.size()));
  out->insert(out->end(), response.text.begin(), response.text.end());

  // Observability tail (trace id, windowed serve stats, SLO classes).
  // Appended after the original layout so pre-trace clients — which stop
  // reading at the text field — keep parsing frames from new servers.
  PutU64(out, response.trace_id);
  PutF64(out, response.window.p50_ms);
  PutF64(out, response.window.p99_ms);
  PutU64(out, response.window.count);
  PutF64(out, response.window.queued_p99_ms);
  PutF64(out, response.window.lifetime_p99_ms);
  PutU32(out, static_cast<uint32_t>(response.slo.size()));
  for (const obs::SloClassHealth& c : response.slo) {
    PutU32(out, static_cast<uint32_t>(c.name.size()));
    out->insert(out->end(), c.name.begin(), c.name.end());
    PutU8(out, static_cast<uint8_t>(c.state));
    PutF64(out, c.latency_budget_ms);
    PutF64(out, c.availability);
    PutF64(out, c.fast_burn);
    PutF64(out, c.slow_burn);
    PutU64(out, c.fast_total);
    PutU64(out, c.fast_bad);
    PutU64(out, c.slow_total);
    PutU64(out, c.slow_bad);
    PutF64(out, c.window_p50_ms);
    PutF64(out, c.window_p99_ms);
    PutU64(out, c.window_count);
    PutF64(out, c.lifetime_p99_ms);
    PutU64(out, c.lifetime_count);
  }
  PutU32(out, response.tenant_id);
  FinishFrame(out, payload);
}

StatusOr<Response> DecodeResponse(const uint8_t* payload, size_t size) {
  Reader in(payload, size);
  Response r;
  uint8_t status = 0, degradation = 0;
  if (!in.ReadU64(&r.id) || !in.ReadU8(&status) || !in.ReadU8(&degradation) ||
      !in.ReadF64(&r.retry_after_ms)) {
    return Status::Corruption("truncated response payload");
  }
  if (status > static_cast<uint8_t>(ResponseStatus::kError)) {
    return Status::Corruption("unknown response status");
  }
  if (degradation > static_cast<uint8_t>(Degradation::kDecodeFault)) {
    return Status::Corruption("unknown degradation tag");
  }
  r.status = static_cast<ResponseStatus>(status);
  r.degradation = static_cast<Degradation>(degradation);

  uint32_t count = 0;
  if (!in.ReadU32(&count) || in.remaining() < count * 4ull) {
    return Status::Corruption("truncated response objects");
  }
  r.objects.resize(count);
  for (uint32_t& o : r.objects) in.ReadU32(&o);
  if (!in.ReadU32(&count) || in.remaining() < count * 8ull) {
    return Status::Corruption("truncated response distances");
  }
  r.distances.resize(count);
  for (double& d : r.distances) in.ReadF64(&d);
  if (!in.ReadU32(&count) || in.remaining() < count * 8ull) {
    return Status::Corruption("truncated response pairs");
  }
  r.pair_left.resize(count);
  r.pair_right.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    in.ReadU32(&r.pair_left[i]);
    in.ReadU32(&r.pair_right[i]);
  }

  if (!in.ReadU64(&r.update_seq) || !in.ReadU64(&r.rows_rewritten) ||
      !in.ReadU64(&r.num_nodes) || !in.ReadU64(&r.num_objects) ||
      !in.ReadF64(&r.suggested_epsilon)) {
    return Status::Corruption("truncated response scalars");
  }
  if (!in.ReadU32(&count) || in.remaining() < count) {
    return Status::Corruption("truncated response text");
  }
  r.text.assign(reinterpret_cast<const char*>(in.cursor()), count);
  in.Skip(count);

  // Observability tail. A frame from a pre-trace server ends exactly here
  // and everything below keeps its defaults; a partial tail is corruption.
  if (in.remaining() == 0) return r;
  uint32_t num_classes = 0;
  if (!in.ReadU64(&r.trace_id) || !in.ReadF64(&r.window.p50_ms) ||
      !in.ReadF64(&r.window.p99_ms) || !in.ReadU64(&r.window.count) ||
      !in.ReadF64(&r.window.queued_p99_ms) ||
      !in.ReadF64(&r.window.lifetime_p99_ms) || !in.ReadU32(&num_classes)) {
    return Status::Corruption("truncated response window stats");
  }
  // Each class is at least 4 (name len) + 1 (state) + 13 scalars * 8 bytes;
  // guards the resize against a hostile count before the per-field reads.
  if (in.remaining() < num_classes * 109ull) {
    return Status::Corruption("truncated response slo classes");
  }
  r.slo.resize(num_classes);
  for (obs::SloClassHealth& c : r.slo) {
    uint32_t name_len = 0;
    if (!in.ReadU32(&name_len) || in.remaining() < name_len) {
      return Status::Corruption("truncated slo class name");
    }
    c.name.assign(reinterpret_cast<const char*>(in.cursor()), name_len);
    in.Skip(name_len);
    uint8_t state = 0;
    if (!in.ReadU8(&state) || !in.ReadF64(&c.latency_budget_ms) ||
        !in.ReadF64(&c.availability) || !in.ReadF64(&c.fast_burn) ||
        !in.ReadF64(&c.slow_burn) || !in.ReadU64(&c.fast_total) ||
        !in.ReadU64(&c.fast_bad) || !in.ReadU64(&c.slow_total) ||
        !in.ReadU64(&c.slow_bad) || !in.ReadF64(&c.window_p50_ms) ||
        !in.ReadF64(&c.window_p99_ms) || !in.ReadU64(&c.window_count) ||
        !in.ReadF64(&c.lifetime_p99_ms) || !in.ReadU64(&c.lifetime_count)) {
      return Status::Corruption("truncated slo class fields");
    }
    if (state > static_cast<uint8_t>(obs::SloState::kCritical)) {
      return Status::Corruption("unknown slo state");
    }
    c.state = static_cast<obs::SloState>(state);
  }
  // Tenant echo, appended after the SLO classes: a pre-tenant server's
  // frame ends at the class boundary and decodes with the default tenant.
  if (in.remaining() > 0 && !in.ReadU32(&r.tenant_id)) {
    return Status::Corruption("truncated response tenant id");
  }
  return r;
}

}  // namespace serve
}  // namespace dsig
