#include "serve/coalesce.h"

#include <chrono>
#include <vector>

#include "obs/metrics.h"

namespace dsig {
namespace serve {
namespace {

struct CoalesceMetrics {
  obs::Counter* leaders;
  obs::Counter* followers;
  obs::Counter* follower_timeouts;
};

const CoalesceMetrics& Metrics() {
  static const CoalesceMetrics metrics = {
      obs::MetricsRegistry::Global().GetCounter("serve.coalesce.leaders"),
      obs::MetricsRegistry::Global().GetCounter("serve.coalesce.followers"),
      obs::MetricsRegistry::Global().GetCounter(
          "serve.coalesce.follower_timeouts"),
  };
  return metrics;
}

}  // namespace

bool Coalescible(const Request& request) {
  switch (request.type) {
    case RequestType::kKnn:
    case RequestType::kRange:
    case RequestType::kJoin:
      return true;
    default:
      return false;
  }
}

std::string CoalesceKey(const Request& request) {
  Request canonical = request;
  canonical.id = 0;
  canonical.trace_id = 0;
  canonical.deadline_ms = 0;
  canonical.tenant_id = 0;
  std::vector<uint8_t> bytes;
  EncodeRequest(canonical, &bytes);
  return std::string(bytes.begin(), bytes.end());
}

SingleFlight::JoinResult SingleFlight::Join(const std::string& key,
                                            const Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it == flights_.end()) {
    flights_[key] = std::make_shared<Flight>();
    Metrics().leaders->Add(1);
    JoinResult result;
    result.leader = true;
    return result;
  }
  // Hold the flight by value: the leader's Publish erases the map entry
  // before every follower has woken.
  std::shared_ptr<Flight> flight = it->second;
  Metrics().followers->Add(1);
  const auto ready = [&] { return flight->done; };
  bool woke = true;
  if (deadline.infinite()) {
    flight->cv.wait(lock, ready);
  } else {
    const double remaining = deadline.remaining_millis();
    woke = remaining > 0 &&
           flight->cv.wait_for(
               lock, std::chrono::duration<double, std::milli>(remaining),
               ready);
  }
  JoinResult result;
  if (woke && flight->have_response) {
    result.ready = true;
    result.response = flight->response;
  } else if (!woke) {
    Metrics().follower_timeouts->Add(1);
  }
  return result;
}

void SingleFlight::Publish(const std::string& key, const Response& response) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return;
    flight = it->second;
    flight->done = true;
    flight->have_response = true;
    flight->response = response;
    flights_.erase(it);
  }
  flight->cv.notify_all();
}

void SingleFlight::Abandon(const std::string& key) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return;
    flight = it->second;
    flight->done = true;
    flights_.erase(it);
  }
  flight->cv.notify_all();
}

size_t SingleFlight::OpenFlights() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

}  // namespace serve
}  // namespace dsig
