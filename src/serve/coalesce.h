// Single-flight request coalescing for identical hot queries.
//
// Under a hot-key workload, many concurrent connections ask the exact same
// question; executing each one independently multiplies queue pressure for
// zero information. The single-flight idiom collapses them: the first
// arrival for a key becomes the LEADER and executes normally (admission,
// degradation, the lot); everyone else arriving while the flight is open
// becomes a FOLLOWER and parks until the leader publishes its response —
// consuming no admission slot at all. Followers keep their own deadlines: a
// follower whose budget expires before the leader finishes gets a
// DEADLINE_EXCEEDED, not a free extension.
//
// The key is the canonical encoding of the request — the frame bytes with
// per-request identity (id, trace id, deadline, tenant) zeroed — so "same
// query" is defined by the wire format itself, not a hand-maintained field
// list. Only idempotent reads (knn/range/join) are coalescible; updates and
// meta requests never share results.
//
// Leaders publish through an RAII guard: every exit path either publishes a
// response or abandons the flight, so followers can never park forever on a
// leader that errored out.
#ifndef DSIG_SERVE_COALESCE_H_
#define DSIG_SERVE_COALESCE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/protocol.h"
#include "util/deadline.h"

namespace dsig {
namespace serve {

// True for request types whose responses may be shared across requesters.
bool Coalescible(const Request& request);

// The canonical-bytes key: request encoded with id / trace_id / deadline_ms /
// tenant_id zeroed. Two requests with equal keys would produce bit-identical
// answer payloads.
std::string CoalesceKey(const Request& request);

class SingleFlight {
 public:
  struct JoinResult {
    bool leader = false;    // caller must execute and Publish/Abandon
    bool ready = false;     // follower: `response` holds the leader's answer
    Response response;      // valid iff ready; identity fields are the
                            // LEADER's — the caller re-stamps id/trace/tenant
  };

  // Joins the flight for `key`. The first caller in becomes the leader and
  // returns immediately; later callers block until the leader publishes,
  // abandons, or their own `deadline` passes (ready = false).
  JoinResult Join(const std::string& key, const Deadline& deadline);

  // Leader hand-off: wakes all followers with the response / with nothing,
  // and closes the flight so the next arrival starts a fresh one.
  void Publish(const std::string& key, const Response& response);
  void Abandon(const std::string& key);

  // Open flights right now (tests / stats).
  size_t OpenFlights() const;

 private:
  struct Flight {
    std::condition_variable cv;
    bool done = false;       // published or abandoned
    bool have_response = false;
    Response response;
  };

  mutable std::mutex mu_;
  // Keyed by canonical bytes. shared_ptr: Publish erases the map entry while
  // followers still hold the flight to copy the response out.
  std::map<std::string, std::shared_ptr<Flight>> flights_;
};

// RAII leader obligation: constructed by the leader, destroyed on every exit
// path. If the leader never published (threw, early-returned), the flight is
// abandoned so followers retry on their own instead of hanging.
class LeaderGuard {
 public:
  LeaderGuard(SingleFlight* flights, std::string key)
      : flights_(flights), key_(std::move(key)) {}
  LeaderGuard(const LeaderGuard&) = delete;
  LeaderGuard& operator=(const LeaderGuard&) = delete;
  ~LeaderGuard() {
    if (flights_ != nullptr) flights_->Abandon(key_);
  }

  void Publish(const Response& response) {
    flights_->Publish(key_, response);
    flights_ = nullptr;
  }

 private:
  SingleFlight* flights_;
  std::string key_;
};

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_COALESCE_H_
