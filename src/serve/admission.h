// Admission control: per-tenant bounded queues drained by deficit-weighted
// round-robin, with per-tenant token-bucket rate limits.
//
// The front-end's overload story is queue-then-shed, but fairness is the
// point: a single flooding client must not starve everyone else. Each
// workload class (queries vs updates) has a budget of concurrent executions;
// in front of each budget sits one bounded wait queue PER TENANT, and a
// deficit-weighted-round-robin scheduler decides which tenant's waiter gets
// the next freed slot:
//
//   * a free execution slot with nobody queued admits immediately;
//   * otherwise the caller (a connection thread — the block is what
//     propagates backpressure down the TCP stream) parks in its tenant's
//     queue until the scheduler hands it a slot, its deadline passes, or the
//     controller shuts down;
//   * a full per-tenant queue sheds instantly with a RETRY_AFTER hint scaled
//     by that tenant's queue pressure — the flooder's queue fills and sheds
//     while other tenants' queues stay shallow;
//   * a tenant over its token-bucket rate sheds before it ever queues, with
//     a hint equal to the time until its next token.
//
// DWRR (Shreedhar & Varghese '96): each tenant carries a deficit counter;
// when the round-robin cursor visits a non-empty queue it credits the
// tenant's quantum (= its configured weight, request cost = 1.0) once per
// visit and drains requests while the deficit covers them. Weights are
// therefore long-run slot shares: weight 2 gets twice the throughput of
// weight 1 under contention, and an idle tenant's deficit resets so it
// cannot hoard credit.
//
// Every transition is counted in the metrics registry, both per class
// (serve.<class>.*, as before) and per tenant (serve.tenant.<name>.*).
// Unknown tenant ids fold into the default tenant so hostile clients cannot
// mint unbounded metric names or per-tenant state.
#ifndef DSIG_SERVE_ADMISSION_H_
#define DSIG_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/deadline.h"

namespace dsig {
namespace serve {

enum class WorkClass : int { kQuery = 0, kUpdate = 1 };
inline constexpr int kNumWorkClasses = 2;

const char* WorkClassName(WorkClass work_class);

// Outcome of an admission attempt.
enum class AdmitOutcome {
  kAdmitted,       // caller holds an execution slot; release via Ticket
  kShed,           // queue full or rate-limited — reply RETRY_AFTER
  kQueueTimeout,   // deadline passed while queued — reply DEADLINE_EXCEEDED
  kShuttingDown,   // controller closed — reply SHUTTING_DOWN
};

// RETRY_AFTER hint for a shed at `queued` waiters of `max_queue` capacity:
// base * (1 + fill) where fill = queued/max_queue clamped to [0, 1], so the
// hint runs base..2*base across the pressure curve. A zero-capacity queue is
// permanently full and hints 2*base — the old formula collapsed that case to
// plain base, telling clients to retry soonest exactly where the server can
// least absorb it.
double RetryAfterHintMs(double base_ms, size_t queued, size_t max_queue);

// One fair-share principal. Tenant ids on the wire are indexes into
// Options::tenants; anything out of range folds into tenant 0.
struct TenantConfig {
  std::string name = "default";
  double weight = 1.0;   // DWRR quantum; long-run slot share under contention
  double rate_qps = 0;   // token-bucket refill rate; 0 = unlimited
  double burst = 0;      // bucket depth; 0 = max(rate_qps, 1)
};

class AdmissionController {
 public:
  struct ClassBudget {
    size_t max_inflight = 8;  // concurrent executions
    size_t max_queue = 32;    // waiters PER TENANT beyond that before shedding
  };
  struct Options {
    ClassBudget query;
    ClassBudget update{/*max_inflight=*/1, /*max_queue=*/64};
    double retry_after_base_ms = 25;  // see RetryAfterHintMs
    // Fair-share principals; tenant id = index. Empty = one default tenant
    // (single-tenant deployments behave exactly like the pre-tenant code).
    std::vector<TenantConfig> tenants;
  };

  // RAII execution slot. Default-constructed tickets hold nothing.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      work_class_ = other.work_class_;
      other.controller_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool held() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, WorkClass work_class)
        : controller_(controller), work_class_(work_class) {}
    AdmissionController* controller_ = nullptr;
    WorkClass work_class_ = WorkClass::kQuery;
  };

  struct AdmitResult {
    AdmitOutcome outcome = AdmitOutcome::kShed;
    Ticket ticket;               // held iff outcome == kAdmitted
    double retry_after_ms = 0;   // meaningful for kShed
    double queued_ms = 0;        // time spent waiting in the queue
    uint32_t tenant = 0;         // resolved (folded) tenant id
    bool rate_limited = false;   // kShed came from the token bucket
  };

  explicit AdmissionController(const Options& options);
  ~AdmissionController();  // out of line: TenantState is incomplete here

  // Blocks (bounded by `deadline` and the tenant's queue budget) until the
  // scheduler hands over an execution slot. Never blocks when the tenant's
  // queue is already full or its token bucket is empty.
  AdmitResult Admit(WorkClass work_class, uint32_t tenant_id,
                    const Deadline& deadline);
  // Single-tenant convenience: admits as the default tenant.
  AdmitResult Admit(WorkClass work_class, const Deadline& deadline) {
    return Admit(work_class, 0, deadline);
  }

  // Wakes every queued waiter with kShuttingDown and refuses all further
  // admissions. Already-admitted requests keep their slots (the drain).
  void Close();

  // Folds an on-the-wire tenant id into a configured one.
  uint32_t ResolveTenant(uint32_t tenant_id) const;
  size_t num_tenants() const;
  const std::string& TenantName(uint32_t tenant_id) const;

  size_t queue_depth(WorkClass work_class) const;  // total across tenants
  size_t queue_depth(WorkClass work_class, uint32_t tenant_id) const;
  size_t inflight(WorkClass work_class) const;

  // True when the tenant's queue is at or beyond `fraction` of its bound —
  // the planner's overload-degradation signal. Per tenant, so one tenant's
  // flood does not degrade everyone else's answers.
  bool QueuePressureAtLeast(WorkClass work_class, uint32_t tenant_id,
                            double fraction) const;
  // Cross-tenant worst case, for the aggregate health view.
  bool QueuePressureAtLeast(WorkClass work_class, double fraction) const;

 private:
  // A parked connection thread; lives on the waiter's stack, linked into its
  // tenant's deque. Each waiter has its own condition variable because the
  // scheduler grants slots to specific waiters — a shared cv would thundering-
  // herd every connection thread per freed slot.
  struct Waiter {
    std::condition_variable cv;
    bool granted = false;
  };

  struct TenantState;

  const ClassBudget& BudgetFor(WorkClass work_class) const {
    return work_class == WorkClass::kQuery ? options_.query : options_.update;
  }
  void ReleaseSlot(WorkClass work_class);
  void PublishGauges(int c);
  void Schedule(int c);      // grant freed slots to waiters, DWRR order
  Waiter* PickNext(int c);   // requires total_queued_[c] > 0
  void AdvanceCursor(int c);
  void RefillBucket(TenantState* tenant);

  Options options_;
  mutable std::mutex mu_;
  bool closed_ = false;
  std::vector<std::unique_ptr<TenantState>> tenants_;
  size_t inflight_[kNumWorkClasses] = {};
  size_t total_queued_[kNumWorkClasses] = {};
  size_t cursor_[kNumWorkClasses] = {};   // DWRR position, persists across calls
  bool credited_[kNumWorkClasses] = {};   // quantum granted at cursor this visit
};

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_ADMISSION_H_
