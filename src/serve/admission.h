// Admission control: bounded per-class request queues with load shedding.
//
// The front-end's overload story is queue-then-shed. Each workload class
// (queries vs updates) has a budget of concurrent executions and a bounded
// wait queue in front of it:
//
//   * a free execution slot admits the request immediately;
//   * a full slot set but free queue space blocks the caller (which is a
//     connection thread — the block is what propagates backpressure down the
//     TCP stream) until a slot frees, the request's deadline passes, or the
//     controller shuts down;
//   * a full queue sheds instantly with a RETRY_AFTER hint scaled by queue
//     pressure, so clients back off harder the deeper the overload.
//
// Every transition is counted in the metrics registry (serve.admitted,
// serve.shed, serve.queue_timeout, serve.queue_depth / serve.inflight
// gauges), which is how the loadgen's overload exhibit and the acceptance
// criteria read queue behaviour.
#ifndef DSIG_SERVE_ADMISSION_H_
#define DSIG_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/deadline.h"

namespace dsig {
namespace serve {

enum class WorkClass : int { kQuery = 0, kUpdate = 1 };
inline constexpr int kNumWorkClasses = 2;

const char* WorkClassName(WorkClass work_class);

// Outcome of an admission attempt.
enum class AdmitOutcome {
  kAdmitted,       // caller holds an execution slot; release via Ticket
  kShed,           // queue full — reply RETRY_AFTER with retry_after_ms
  kQueueTimeout,   // deadline passed while queued — reply DEADLINE_EXCEEDED
  kShuttingDown,   // controller closed — reply SHUTTING_DOWN
};

class AdmissionController {
 public:
  struct ClassBudget {
    size_t max_inflight = 8;  // concurrent executions
    size_t max_queue = 32;    // waiters beyond that before shedding
  };
  struct Options {
    ClassBudget query;
    ClassBudget update{/*max_inflight=*/1, /*max_queue=*/64};
    // RETRY_AFTER hint = base * (1 + queue_depth / max_queue) at shed time.
    double retry_after_base_ms = 25;
  };

  // RAII execution slot. Default-constructed tickets hold nothing.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      work_class_ = other.work_class_;
      other.controller_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool held() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, WorkClass work_class)
        : controller_(controller), work_class_(work_class) {}
    AdmissionController* controller_ = nullptr;
    WorkClass work_class_ = WorkClass::kQuery;
  };

  struct AdmitResult {
    AdmitOutcome outcome = AdmitOutcome::kShed;
    Ticket ticket;               // held iff outcome == kAdmitted
    double retry_after_ms = 0;   // meaningful for kShed
    double queued_ms = 0;        // time spent waiting in the queue
  };

  explicit AdmissionController(const Options& options);

  // Blocks (bounded by `deadline` and the queue budget) until an execution
  // slot is available. Never blocks when the queue is already full.
  AdmitResult Admit(WorkClass work_class, const Deadline& deadline);

  // Wakes every queued waiter with kShuttingDown and refuses all further
  // admissions. Already-admitted requests keep their slots (the drain).
  void Close();

  size_t queue_depth(WorkClass work_class) const;
  size_t inflight(WorkClass work_class) const;

  // True when the class's queue is at or beyond `fraction` of its bound —
  // the planner's overload-degradation signal.
  bool QueuePressureAtLeast(WorkClass work_class, double fraction) const;

 private:
  void ReleaseSlot(WorkClass work_class);
  void PublishGauges(int c);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable slot_freed_;
  bool closed_ = false;
  size_t inflight_[kNumWorkClasses] = {};
  size_t queued_[kNumWorkClasses] = {};
};

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_ADMISSION_H_
