// Shared socket I/O for the serving front-end: loop-until-done send/recv
// with optional wall-clock deadlines, and a deterministic SocketFaultPlan
// injector mirroring util/fault_plan.h's Read/WriteFaultPlan for files.
//
// Every byte the server or a client moves goes through SendAll/RecvAll so
// that (a) partial transfers — the normal case on a stream socket — are
// always handled by looping, (b) hostile-client defenses are uniform: a
// read deadline bounds how long a peer may dribble one frame (slowloris),
// a write deadline bounds how long a peer may refuse to drain its receive
// buffer, and (c) tests can inject every network failure mode byte-
// deterministically:
//
//   * short writes/reads   max_chunk chops transfers into n-byte pieces,
//                          proving the loops instead of hoping for them;
//   * mid-frame reset      reset_after_bytes closes the socket with
//                          SO_LINGER 0 (a real RST) once the cumulative
//                          byte counter crosses the threshold;
//   * stalls               stall_at_byte sleeps stall_ms before moving the
//                          byte at that cumulative offset — long enough and
//                          the peer's read deadline fires, which is exactly
//                          what the slowloris tests assert.
//
// Deadlines are enforced with per-call SO_RCVTIMEO/SO_SNDTIMEO re-armed to
// the remaining budget before every syscall: SO_*TIMEO alone restarts per
// call, so a peer feeding one byte per timeout would never trip it.
#ifndef DSIG_SERVE_NET_H_
#define DSIG_SERVE_NET_H_

#include <cstddef>
#include <cstdint>

#include "util/fault_plan.h"

namespace dsig {
namespace serve {

// Deterministic network fault injection for one direction of one socket.
// Offsets are cumulative bytes moved through the plan's FaultySocket, so a
// test can place a fault mid-frame ("reset after the 3rd byte of the 2nd
// frame") exactly.
struct SocketFaultPlan {
  uint64_t reset_after_bytes = kNoFault;  // RST once this many bytes moved
  uint64_t stall_at_byte = kNoFault;      // sleep before moving this byte
  double stall_ms = 0;
  size_t max_chunk = 0;                   // 0 = unchopped; else short I/O
};

// Mutable per-socket injection state: one plan + the cumulative counter.
// Not thread-safe; one per direction per connection, like the plans in
// util/fault_plan.h are one per file.
struct SocketFaultState {
  SocketFaultPlan plan;
  uint64_t bytes_moved = 0;

  bool armed() const {
    return plan.reset_after_bytes != kNoFault ||
           plan.stall_at_byte != kNoFault || plan.max_chunk != 0;
  }
};

struct NetIoResult {
  bool ok = false;
  bool timed_out = false;   // the deadline elapsed mid-transfer
  bool clean_eof = false;   // peer closed at a boundary (no bytes moved)
  bool fault_reset = false; // the fault plan fired its reset
};

// Abrupt close: SO_LINGER {on, 0} + close() sends an RST instead of a FIN,
// which is how a crashing or hostile peer actually disappears.
void AbortiveClose(int fd);

// Sends `len` bytes, bounded by `deadline_ms` (<= 0 = no deadline) measured
// across the WHOLE transfer, with optional fault injection. MSG_NOSIGNAL so
// a vanished peer is an error return, not SIGPIPE.
NetIoResult SendAll(int fd, const uint8_t* data, size_t len,
                    double deadline_ms = 0,
                    SocketFaultState* faults = nullptr);

// Receives exactly `len` bytes under the same whole-transfer deadline.
NetIoResult RecvAll(int fd, uint8_t* data, size_t len, double deadline_ms = 0,
                    SocketFaultState* faults = nullptr);

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_NET_H_
