// The dsig serving front-end: a TCP server over one signature deployment.
//
// Request lifecycle (the "Serving, overload & degradation" section of
// ARCHITECTURE.md draws the state machine):
//
//   parse -> coalesce -> admit -> plan -> execute -> respond
//
//   * parse      length-prefixed frames (serve/protocol.h) moved through
//                serve/net.h with read/write deadlines (slowloris defense);
//                malformed bytes count serve.protocol_errors and close the
//                connection — never abort the process.
//   * coalesce   identical concurrent hot queries single-flight
//                (serve/coalesce.h): one leader executes, followers share
//                its answer without consuming admission slots.
//   * admit      per-tenant bounded queues drained deficit-weighted
//                round-robin with token-bucket rate limits
//                (serve/admission.h). Shed replies RETRY_AFTER; a deadline
//                that passes while queued replies DEADLINE_EXCEEDED without
//                ever holding an execution slot.
//   * plan       under queue pressure (degrade_queue_fraction) queries are
//                downgraded to the category-only evaluators (serve/degrade.h)
//                and tagged Degradation::kOverload. Updates never degrade.
//   * execute    queries run with the request's Deadline installed
//                (util/deadline.h); the query layer returns typed partial
//                results on expiry. Updates serialize through the single
//                DurableUpdater (WAL-first, fsync per its sync policy) — the
//                OK ack means the update is durable.
//   * respond    decode-fault fallbacks observed on this thread during
//                execution tag the response Degradation::kDecodeFault.
//
// Threading: one accept thread plus one thread per connection. Concurrency
// of actual work is bounded by admission, not by connection count — extra
// connections queue (backpressure) or shed. Queries run under epoch
// snapshots and may overlap updates freely (PR 5's isolation contract).
//
// Shutdown: Stop() stops accepting, fails queued requests with
// SHUTTING_DOWN, lets in-flight requests finish (bounded by
// drain_timeout_ms), then closes connections. The dsig_serve binary follows
// with a final checkpoint.
#ifndef DSIG_SERVE_SERVER_H_
#define DSIG_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "io/durable_index.h"
#include "obs/slo.h"
#include "serve/admission.h"
#include "serve/coalesce.h"
#include "serve/protocol.h"

namespace dsig {
namespace obs {
class WindowedHistogram;
struct TraceSummary;
}  // namespace obs
}  // namespace dsig

namespace dsig {
namespace serve {

struct ServerOptions {
  uint16_t port = 0;  // 0 = kernel-assigned; see DsigServer::port()
  AdmissionController::Options admission;

  // Queries degrade to category-only answers when the query queue is at or
  // beyond this fraction of its bound. <= 0 degrades every query (a test
  // and brown-out hook); > 1 never degrades.
  double degrade_queue_fraction = 0.5;

  // Deadline applied to requests that carry none; <= 0 leaves them
  // unbounded.
  double default_deadline_ms = 0;

  // How long Stop() waits for in-flight requests before closing their
  // connections anyway.
  double drain_timeout_ms = 5000;

  // Per-request-class SLOs (obs/slo.h). Empty installs defaults for the
  // four request classes (knn, range, join, update).
  std::vector<obs::SloObjective> slo;
  obs::SloWindows slo_windows;

  // Tail-based trace sampling: full trace JSON lines for requests that
  // breach their class SLO go to `slow_trace_sink` (borrowed; nullptr
  // disables the slow-query log), rate-limited to `slow_trace_qps` lines
  // per second so an overload can't drown the log in its own diagnosis.
  double slow_trace_qps = 20;
  std::FILE* slow_trace_sink = nullptr;

  // Every request gets a light trace (total time + op/buffer deltas,
  // ~nothing); every Nth request is upgraded to a FULL trace whose spans
  // attribute the execution phases. Full tracing activates every Span on
  // the query's inner loops, which bench_trace_overhead prices at tens of
  // percent — affordable on a sample, not on every request. 1 traces
  // everything (tests); 0 disables phase attribution entirely.
  uint32_t trace_sample_period = 16;

  // Per-tenant SLOs, one objective per admission tenant, in tenant-id
  // order. Empty derives "tenant_<name>" objectives (100 ms p-budget, 99%
  // availability) for every configured tenant.
  std::vector<obs::SloObjective> tenant_slo;

  // Single-flight coalescing (serve/coalesce.h) for identical hot queries.
  bool coalesce = true;
  // Test hook: the leader holds its flight open this long before admission,
  // so a test can pile followers onto it deterministically.
  double coalesce_hold_for_test_ms = 0;

  // Hostile-client hardening (serve/net.h). Once a frame has started
  // arriving, the rest of it must land within read_timeout_ms (slowloris
  // defense); a response must drain within write_timeout_ms; an idle
  // connection may sit up to idle_timeout_ms between frames. <= 0 disables
  // the respective bound.
  double read_timeout_ms = 5000;
  double write_timeout_ms = 5000;
  double idle_timeout_ms = 0;

  // Accept backpressure: with more than this many open connections, the
  // accept loop holds new sockets un-serviced (the TCP backlog queues
  // behind them) until one frees. 0 = unlimited.
  size_t max_connections = 0;
};

class DsigServer {
 public:
  // The state being served. The server borrows everything; `updater` may be
  // null for read-only serving (updates then answer kError).
  struct Deployment {
    RoadNetwork* graph = nullptr;
    SignatureIndex* index = nullptr;
    DurableUpdater* updater = nullptr;
  };

  static StatusOr<std::unique_ptr<DsigServer>> Start(
      const Deployment& deployment, const ServerOptions& options);

  DsigServer(const DsigServer&) = delete;
  DsigServer& operator=(const DsigServer&) = delete;
  ~DsigServer();

  // The bound port (useful with options.port = 0).
  uint16_t port() const { return port_; }

  // Graceful shutdown per the class comment; idempotent, callable once the
  // caller decides to drain (e.g. on SIGTERM).
  void Stop();

  bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

 private:
  DsigServer(const Deployment& deployment, const ServerOptions& options);

  void AcceptLoop();
  void ConnectionLoop(int fd);

  // Full request lifecycle minus parsing; never throws, never aborts.
  Response Handle(const Request& request);
  Response ExecuteQuery(const Request& request, const Deadline& deadline,
                        bool degraded);
  Response ExecuteUpdate(const Request& request);

  // Windowed serve-path stats + per-class SLO health into the response tail.
  void FillObservability(Response* response) const;
  // Greppable SLO_HEALTH / SLO_OVERALL text for the kSlo request.
  std::string SloText() const;
  // Token-bucket gate on the slow-query log; true grants one line.
  bool AllowSlowTrace();
  // One JSON line (trace tree: queue wait + execution phases + ops/buffer
  // deltas) to the slow-query sink for an SLO-breaching request.
  void EmitSlowTrace(const Request& request, const Response& response,
                     const obs::TraceSummary& summary, double queued_ms,
                     double total_ms, int slo_class);

  Deployment deployment_;
  ServerOptions options_;
  AdmissionController admission_;
  SingleFlight flights_;
  std::unique_ptr<obs::SloEngine> slo_;
  std::unique_ptr<obs::SloEngine> tenant_slo_;  // class index == tenant id
  obs::WindowedHistogram* window_latency_ms_;  // serve.latency_ms ring
  obs::WindowedHistogram* window_queued_ms_;   // serve.queued_ms ring
  // serve.tenant.<name>.latency_ms rings, indexed by tenant id.
  std::vector<obs::WindowedHistogram*> tenant_window_latency_;
  std::mutex slow_trace_mu_;  // token bucket + sink writes
  double slow_trace_tokens_ = 0;
  uint64_t slow_trace_refill_ns_ = 0;
  std::atomic<uint64_t> trace_seq_{0};  // drives trace_sample_period
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex connections_mu_;
  std::condition_variable connections_cv_;  // max_connections backpressure
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
  std::mutex update_mu_;  // serializes the single-writer DurableUpdater
};

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_SERVER_H_
