// The dsig serving front-end: a TCP server over one signature deployment.
//
// Request lifecycle (the "Serving, overload & degradation" section of
// ARCHITECTURE.md draws the state machine):
//
//   parse -> admit -> plan -> execute -> respond
//
//   * parse      length-prefixed frames (serve/protocol.h); malformed bytes
//                count serve.protocol_errors and close the connection —
//                never abort the process.
//   * admit      per-class bounded queue (serve/admission.h). Shed replies
//                RETRY_AFTER; a deadline that passes while queued replies
//                DEADLINE_EXCEEDED without ever holding an execution slot.
//   * plan       under queue pressure (degrade_queue_fraction) queries are
//                downgraded to the category-only evaluators (serve/degrade.h)
//                and tagged Degradation::kOverload. Updates never degrade.
//   * execute    queries run with the request's Deadline installed
//                (util/deadline.h); the query layer returns typed partial
//                results on expiry. Updates serialize through the single
//                DurableUpdater (WAL-first, fsync per its sync policy) — the
//                OK ack means the update is durable.
//   * respond    decode-fault fallbacks observed on this thread during
//                execution tag the response Degradation::kDecodeFault.
//
// Threading: one accept thread plus one thread per connection. Concurrency
// of actual work is bounded by admission, not by connection count — extra
// connections queue (backpressure) or shed. Queries run under epoch
// snapshots and may overlap updates freely (PR 5's isolation contract).
//
// Shutdown: Stop() stops accepting, fails queued requests with
// SHUTTING_DOWN, lets in-flight requests finish (bounded by
// drain_timeout_ms), then closes connections. The dsig_serve binary follows
// with a final checkpoint.
#ifndef DSIG_SERVE_SERVER_H_
#define DSIG_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "io/durable_index.h"
#include "serve/admission.h"
#include "serve/protocol.h"

namespace dsig {
namespace serve {

struct ServerOptions {
  uint16_t port = 0;  // 0 = kernel-assigned; see DsigServer::port()
  AdmissionController::Options admission;

  // Queries degrade to category-only answers when the query queue is at or
  // beyond this fraction of its bound. <= 0 degrades every query (a test
  // and brown-out hook); > 1 never degrades.
  double degrade_queue_fraction = 0.5;

  // Deadline applied to requests that carry none; <= 0 leaves them
  // unbounded.
  double default_deadline_ms = 0;

  // How long Stop() waits for in-flight requests before closing their
  // connections anyway.
  double drain_timeout_ms = 5000;
};

class DsigServer {
 public:
  // The state being served. The server borrows everything; `updater` may be
  // null for read-only serving (updates then answer kError).
  struct Deployment {
    RoadNetwork* graph = nullptr;
    SignatureIndex* index = nullptr;
    DurableUpdater* updater = nullptr;
  };

  static StatusOr<std::unique_ptr<DsigServer>> Start(
      const Deployment& deployment, const ServerOptions& options);

  DsigServer(const DsigServer&) = delete;
  DsigServer& operator=(const DsigServer&) = delete;
  ~DsigServer();

  // The bound port (useful with options.port = 0).
  uint16_t port() const { return port_; }

  // Graceful shutdown per the class comment; idempotent, callable once the
  // caller decides to drain (e.g. on SIGTERM).
  void Stop();

  bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

 private:
  DsigServer(const Deployment& deployment, const ServerOptions& options);

  void AcceptLoop();
  void ConnectionLoop(int fd);

  // Full request lifecycle minus parsing; never throws, never aborts.
  Response Handle(const Request& request);
  Response ExecuteQuery(const Request& request, const Deadline& deadline,
                        bool degraded);
  Response ExecuteUpdate(const Request& request);

  Deployment deployment_;
  ServerOptions options_;
  AdmissionController admission_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex connections_mu_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
  std::mutex update_mu_;  // serializes the single-writer DurableUpdater
};

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_SERVER_H_
