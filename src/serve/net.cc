#include "serve/net.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "util/deadline.h"

namespace dsig {
namespace serve {
namespace {

// Arms SO_RCVTIMEO/SO_SNDTIMEO with the remaining transfer budget so the
// next syscall cannot outlive the whole-transfer deadline. A remaining
// budget of zero still arms a 1us timeout: {0,0} means "block forever" to
// the kernel, the opposite of what an expired deadline needs.
void ArmTimeout(int fd, int option, double remaining_ms) {
  timeval tv{};
  if (remaining_ms > 0) {
    tv.tv_sec = static_cast<time_t>(remaining_ms / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((remaining_ms - 1000.0 * tv.tv_sec) * 1000);
  }
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

// {0,0} = kernel default = block forever. Needed because timeouts are a
// per-socket setting: a deadline armed for one transfer must not leak into
// a later deadline-free transfer on the same connection.
void DisarmTimeout(int fd, int option) {
  timeval tv{};
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

// Applies the fault plan to the next transfer of up to `want` bytes
// starting at cumulative offset faults->bytes_moved. Returns the number of
// bytes the caller may move now (possibly chopped), or 0 with *reset set
// when the plan kills the connection here.
size_t ApplyFaults(int fd, SocketFaultState* faults, size_t want,
                   bool* reset) {
  *reset = false;
  if (faults == nullptr || !faults->armed()) return want;
  const SocketFaultPlan& plan = faults->plan;
  const uint64_t at = faults->bytes_moved;
  if (plan.reset_after_bytes != kNoFault && at >= plan.reset_after_bytes) {
    AbortiveClose(fd);
    *reset = true;
    return 0;
  }
  size_t n = want;
  if (plan.reset_after_bytes != kNoFault) {
    n = static_cast<size_t>(
        std::min<uint64_t>(n, plan.reset_after_bytes - at));
  }
  if (plan.stall_at_byte != kNoFault && at <= plan.stall_at_byte &&
      plan.stall_at_byte < at + n) {
    if (at == plan.stall_at_byte) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan.stall_ms));
    } else {
      // Move only up to the stalled byte so the sleep lands exactly on it.
      n = static_cast<size_t>(plan.stall_at_byte - at);
    }
  }
  if (plan.max_chunk != 0) n = std::min(n, plan.max_chunk);
  return n;
}

}  // namespace

void AbortiveClose(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

NetIoResult SendAll(int fd, const uint8_t* data, size_t len,
                    double deadline_ms, SocketFaultState* faults) {
  NetIoResult result;
  const uint64_t start_ns = Deadline::NowNanos();
  if (deadline_ms <= 0) DisarmTimeout(fd, SO_SNDTIMEO);
  size_t off = 0;
  while (off < len) {
    double remaining_ms = 0;
    if (deadline_ms > 0) {
      remaining_ms =
          deadline_ms -
          static_cast<double>(Deadline::NowNanos() - start_ns) / 1e6;
      if (remaining_ms <= 0) {
        result.timed_out = true;
        return result;
      }
      ArmTimeout(fd, SO_SNDTIMEO, remaining_ms);
    }
    bool reset = false;
    const size_t want = ApplyFaults(fd, faults, len - off, &reset);
    if (reset) {
      result.fault_reset = true;
      return result;
    }
    const ssize_t n = ::send(fd, data + off, want, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        result.timed_out = true;
      }
      return result;
    }
    off += static_cast<size_t>(n);
    if (faults != nullptr) faults->bytes_moved += static_cast<uint64_t>(n);
  }
  result.ok = true;
  return result;
}

NetIoResult RecvAll(int fd, uint8_t* data, size_t len, double deadline_ms,
                    SocketFaultState* faults) {
  NetIoResult result;
  const uint64_t start_ns = Deadline::NowNanos();
  if (deadline_ms <= 0) DisarmTimeout(fd, SO_RCVTIMEO);
  size_t off = 0;
  while (off < len) {
    double remaining_ms = 0;
    if (deadline_ms > 0) {
      remaining_ms =
          deadline_ms -
          static_cast<double>(Deadline::NowNanos() - start_ns) / 1e6;
      if (remaining_ms <= 0) {
        result.timed_out = true;
        return result;
      }
      ArmTimeout(fd, SO_RCVTIMEO, remaining_ms);
    }
    bool reset = false;
    const size_t want = ApplyFaults(fd, faults, len - off, &reset);
    if (reset) {
      result.fault_reset = true;
      return result;
    }
    const ssize_t n = ::recv(fd, data + off, want, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        result.timed_out = true;
      }
      result.clean_eof = (n == 0 && off == 0);
      return result;
    }
    off += static_cast<size_t>(n);
    if (faults != nullptr) faults->bytes_moved += static_cast<uint64_t>(n);
  }
  result.ok = true;
  return result;
}

}  // namespace serve
}  // namespace dsig
