#include "serve/admission.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace dsig {
namespace serve {
namespace {

struct ClassMetrics {
  obs::Counter* admitted;
  obs::Counter* shed;
  obs::Counter* queue_timeout;
  obs::Gauge* queue_depth;
  obs::Gauge* inflight;
  obs::Histogram* queued_ms;
};

// Registry handles are created once and cached (stable pointers, see
// obs/metrics.h); names are serve.<class>.<metric>.
const ClassMetrics& MetricsFor(int c) {
  static const ClassMetrics metrics[kNumWorkClasses] = {
      {
          obs::MetricsRegistry::Global().GetCounter("serve.query.admitted"),
          obs::MetricsRegistry::Global().GetCounter("serve.query.shed"),
          obs::MetricsRegistry::Global().GetCounter("serve.query.queue_timeout"),
          obs::MetricsRegistry::Global().GetGauge("serve.query.queue_depth"),
          obs::MetricsRegistry::Global().GetGauge("serve.query.inflight"),
          obs::MetricsRegistry::Global().GetHistogram("serve.query.queued_ms"),
      },
      {
          obs::MetricsRegistry::Global().GetCounter("serve.update.admitted"),
          obs::MetricsRegistry::Global().GetCounter("serve.update.shed"),
          obs::MetricsRegistry::Global().GetCounter(
              "serve.update.queue_timeout"),
          obs::MetricsRegistry::Global().GetGauge("serve.update.queue_depth"),
          obs::MetricsRegistry::Global().GetGauge("serve.update.inflight"),
          obs::MetricsRegistry::Global().GetHistogram("serve.update.queued_ms"),
      },
  };
  return metrics[c];
}

}  // namespace

const char* WorkClassName(WorkClass work_class) {
  return work_class == WorkClass::kQuery ? "query" : "update";
}

double RetryAfterHintMs(double base_ms, size_t queued, size_t max_queue) {
  if (max_queue == 0) return 2.0 * base_ms;
  const double fill = static_cast<double>(std::min(queued, max_queue)) /
                      static_cast<double>(max_queue);
  return base_ms * (1.0 + fill);
}

// Per-tenant queues, DWRR accounting, token bucket, and cached metric
// handles. Metric names come from the bounded tenant config, never from the
// wire, so cardinality is fixed at construction.
struct AdmissionController::TenantState {
  explicit TenantState(const TenantConfig& config_in) : config(config_in) {
    config.weight = std::max(config.weight, 0.01);
    if (config.rate_qps > 0) {
      burst = config.burst > 0 ? config.burst : std::max(config.rate_qps, 1.0);
      tokens = burst;
      last_refill_ns = Deadline::NowNanos();
    }
    auto& reg = obs::MetricsRegistry::Global();
    const std::string prefix = "serve.tenant." + config.name + ".";
    admitted = reg.GetCounter(prefix + "admitted");
    shed = reg.GetCounter(prefix + "shed");
    rate_limited = reg.GetCounter(prefix + "rate_limited");
    queue_timeout = reg.GetCounter(prefix + "queue_timeout");
    queued_ms = reg.GetHistogram(prefix + "queued_ms");
  }

  TenantConfig config;
  std::deque<Waiter*> waiters[kNumWorkClasses];
  double deficit[kNumWorkClasses] = {};

  // Token bucket; meaningful only when config.rate_qps > 0.
  double burst = 0;
  double tokens = 0;
  uint64_t last_refill_ns = 0;

  obs::Counter* admitted = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* rate_limited = nullptr;
  obs::Counter* queue_timeout = nullptr;
  obs::Histogram* queued_ms = nullptr;
};

AdmissionController::AdmissionController(const Options& options)
    : options_(options) {
  if (options_.tenants.empty()) options_.tenants.push_back(TenantConfig{});
  tenants_.reserve(options_.tenants.size());
  for (const TenantConfig& config : options_.tenants) {
    tenants_.push_back(std::make_unique<TenantState>(config));
  }
}

AdmissionController::~AdmissionController() = default;

uint32_t AdmissionController::ResolveTenant(uint32_t tenant_id) const {
  return tenant_id < tenants_.size() ? tenant_id : 0;
}

size_t AdmissionController::num_tenants() const { return tenants_.size(); }

const std::string& AdmissionController::TenantName(uint32_t tenant_id) const {
  return tenants_[ResolveTenant(tenant_id)]->config.name;
}

void AdmissionController::PublishGauges(int c) {
  MetricsFor(c).queue_depth->Set(static_cast<double>(total_queued_[c]));
  MetricsFor(c).inflight->Set(static_cast<double>(inflight_[c]));
}

void AdmissionController::RefillBucket(TenantState* tenant) {
  const uint64_t now_ns = Deadline::NowNanos();
  const double elapsed_s =
      static_cast<double>(now_ns - tenant->last_refill_ns) / 1e9;
  tenant->last_refill_ns = now_ns;
  tenant->tokens = std::min(
      tenant->burst, tenant->tokens + elapsed_s * tenant->config.rate_qps);
}

void AdmissionController::AdvanceCursor(int c) {
  cursor_[c] = (cursor_[c] + 1) % tenants_.size();
  credited_[c] = false;
}

AdmissionController::Waiter* AdmissionController::PickNext(int c) {
  // Classic DWRR: visit queues round-robin, credit each non-empty queue its
  // quantum once per visit, serve while the deficit covers unit-cost
  // requests. Terminates because total_queued_[c] > 0 guarantees a non-empty
  // queue whose deficit grows by >= 0.01 per rotation.
  for (;;) {
    TenantState& tenant = *tenants_[cursor_[c]];
    auto& queue = tenant.waiters[c];
    if (queue.empty()) {
      // An idle tenant must not bank credit for later bursts.
      tenant.deficit[c] = 0;
      AdvanceCursor(c);
      continue;
    }
    if (!credited_[c]) {
      tenant.deficit[c] += tenant.config.weight;
      credited_[c] = true;
    }
    if (tenant.deficit[c] >= 1.0) {
      tenant.deficit[c] -= 1.0;
      Waiter* waiter = queue.front();
      queue.pop_front();
      return waiter;
    }
    AdvanceCursor(c);
  }
}

void AdmissionController::Schedule(int c) {
  // Hand freed slots to waiters in DWRR order. Incrementing inflight and
  // setting granted under the lock transfers the slot before the waiter
  // wakes, so a slot can never be double-claimed by the fast path.
  const size_t cap = BudgetFor(static_cast<WorkClass>(c)).max_inflight;
  while (!closed_ && inflight_[c] < cap && total_queued_[c] > 0) {
    Waiter* waiter = PickNext(c);
    --total_queued_[c];
    ++inflight_[c];
    waiter->granted = true;
    waiter->cv.notify_one();
  }
  PublishGauges(c);
}

AdmissionController::AdmitResult AdmissionController::Admit(
    WorkClass work_class, uint32_t tenant_id, const Deadline& deadline) {
  const int c = static_cast<int>(work_class);
  const ClassBudget& budget = BudgetFor(work_class);
  const uint64_t enter_ns = Deadline::NowNanos();

  std::unique_lock<std::mutex> lock(mu_);
  AdmitResult result;
  result.tenant = ResolveTenant(tenant_id);
  TenantState& tenant = *tenants_[result.tenant];
  if (closed_) {
    result.outcome = AdmitOutcome::kShuttingDown;
    return result;
  }

  // Rate limit first: a tenant over its contracted rate sheds before it can
  // occupy queue space, and the hint is exactly when its next token lands.
  if (tenant.config.rate_qps > 0) {
    RefillBucket(&tenant);
    if (tenant.tokens < 1.0) {
      result.outcome = AdmitOutcome::kShed;
      result.rate_limited = true;
      result.retry_after_ms =
          (1.0 - tenant.tokens) / tenant.config.rate_qps * 1000.0;
      MetricsFor(c).shed->Add(1);
      tenant.shed->Add(1);
      tenant.rate_limited->Add(1);
      return result;
    }
    tenant.tokens -= 1.0;
  }

  auto& queue = tenant.waiters[c];
  if (inflight_[c] < budget.max_inflight && total_queued_[c] == 0) {
    // Fast path only when nobody is queued anywhere in this class —
    // otherwise a newcomer would jump the scheduler's fair order.
    ++inflight_[c];
    PublishGauges(c);
    result.outcome = AdmitOutcome::kAdmitted;
    result.ticket = Ticket(this, work_class);
    result.queued_ms =
        static_cast<double>(Deadline::NowNanos() - enter_ns) / 1e6;
    MetricsFor(c).admitted->Add(1);
    MetricsFor(c).queued_ms->Record(result.queued_ms);
    tenant.admitted->Add(1);
    tenant.queued_ms->Record(result.queued_ms);
    return result;
  }
  if (queue.size() >= budget.max_queue) {
    // This tenant's queue is full: shed instantly, hinting a backoff
    // proportional to how deep ITS overload is (other tenants unaffected).
    result.outcome = AdmitOutcome::kShed;
    result.retry_after_ms = RetryAfterHintMs(options_.retry_after_base_ms,
                                             queue.size(), budget.max_queue);
    MetricsFor(c).shed->Add(1);
    tenant.shed->Add(1);
    return result;
  }

  Waiter self;
  queue.push_back(&self);
  ++total_queued_[c];
  // Self-healing: if a slot is actually free (possible when this waiter is
  // the first into a just-emptied system), the scheduler grants it now and
  // the wait below falls straight through.
  Schedule(c);
  const auto ready = [&] { return self.granted || closed_; };
  bool woke = true;
  if (deadline.infinite()) {
    self.cv.wait(lock, ready);
  } else {
    // Wait no longer than the request's own budget: a request whose
    // deadline passes in the queue must not consume an execution slot.
    const double remaining = deadline.remaining_millis();
    woke = remaining > 0 &&
           self.cv.wait_for(
               lock, std::chrono::duration<double, std::milli>(remaining),
               ready);
  }
  result.queued_ms = static_cast<double>(Deadline::NowNanos() - enter_ns) / 1e6;
  if (self.granted) {
    // The scheduler already moved the slot to us (inflight incremented,
    // dequeued). Granted-then-closed still proceeds: admitted requests keep
    // their slots through the drain.
    result.outcome = AdmitOutcome::kAdmitted;
    result.ticket = Ticket(this, work_class);
    MetricsFor(c).admitted->Add(1);
    MetricsFor(c).queued_ms->Record(result.queued_ms);
    tenant.admitted->Add(1);
    tenant.queued_ms->Record(result.queued_ms);
    return result;
  }
  // Timed out or shutting down: still queued (granted is only ever set with
  // the dequeue, under this lock), so unlink ourselves.
  queue.erase(std::find(queue.begin(), queue.end(), &self));
  --total_queued_[c];
  PublishGauges(c);
  if (!woke) {
    result.outcome = AdmitOutcome::kQueueTimeout;
    MetricsFor(c).queue_timeout->Add(1);
    tenant.queue_timeout->Add(1);
  } else {
    result.outcome = AdmitOutcome::kShuttingDown;
  }
  return result;
}

void AdmissionController::ReleaseSlot(WorkClass work_class) {
  const int c = static_cast<int>(work_class);
  std::lock_guard<std::mutex> lock(mu_);
  --inflight_[c];
  Schedule(c);
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(work_class_);
    controller_ = nullptr;
  }
}

void AdmissionController::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  for (auto& tenant : tenants_) {
    for (int c = 0; c < kNumWorkClasses; ++c) {
      for (Waiter* waiter : tenant->waiters[c]) waiter->cv.notify_one();
    }
  }
}

size_t AdmissionController::queue_depth(WorkClass work_class) const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_[static_cast<int>(work_class)];
}

size_t AdmissionController::queue_depth(WorkClass work_class,
                                        uint32_t tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_[ResolveTenant(tenant_id)]
      ->waiters[static_cast<int>(work_class)]
      .size();
}

size_t AdmissionController::inflight(WorkClass work_class) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_[static_cast<int>(work_class)];
}

bool AdmissionController::QueuePressureAtLeast(WorkClass work_class,
                                               uint32_t tenant_id,
                                               double fraction) const {
  const int c = static_cast<int>(work_class);
  const size_t max_queue = std::max<size_t>(BudgetFor(work_class).max_queue, 1);
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(
             tenants_[ResolveTenant(tenant_id)]->waiters[c].size()) >=
         fraction * static_cast<double>(max_queue);
}

bool AdmissionController::QueuePressureAtLeast(WorkClass work_class,
                                               double fraction) const {
  const int c = static_cast<int>(work_class);
  const size_t max_queue = std::max<size_t>(BudgetFor(work_class).max_queue, 1);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& tenant : tenants_) {
    if (static_cast<double>(tenant->waiters[c].size()) >=
        fraction * static_cast<double>(max_queue)) {
      return true;
    }
  }
  return false;
}

}  // namespace serve
}  // namespace dsig
