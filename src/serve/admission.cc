#include "serve/admission.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace dsig {
namespace serve {
namespace {

struct ClassMetrics {
  obs::Counter* admitted;
  obs::Counter* shed;
  obs::Counter* queue_timeout;
  obs::Gauge* queue_depth;
  obs::Gauge* inflight;
  obs::Histogram* queued_ms;
};

// Registry handles are created once and cached (stable pointers, see
// obs/metrics.h); names are serve.<class>.<metric>.
const ClassMetrics& MetricsFor(int c) {
  static const ClassMetrics metrics[kNumWorkClasses] = {
      {
          obs::MetricsRegistry::Global().GetCounter("serve.query.admitted"),
          obs::MetricsRegistry::Global().GetCounter("serve.query.shed"),
          obs::MetricsRegistry::Global().GetCounter("serve.query.queue_timeout"),
          obs::MetricsRegistry::Global().GetGauge("serve.query.queue_depth"),
          obs::MetricsRegistry::Global().GetGauge("serve.query.inflight"),
          obs::MetricsRegistry::Global().GetHistogram("serve.query.queued_ms"),
      },
      {
          obs::MetricsRegistry::Global().GetCounter("serve.update.admitted"),
          obs::MetricsRegistry::Global().GetCounter("serve.update.shed"),
          obs::MetricsRegistry::Global().GetCounter(
              "serve.update.queue_timeout"),
          obs::MetricsRegistry::Global().GetGauge("serve.update.queue_depth"),
          obs::MetricsRegistry::Global().GetGauge("serve.update.inflight"),
          obs::MetricsRegistry::Global().GetHistogram("serve.update.queued_ms"),
      },
  };
  return metrics[c];
}

}  // namespace

const char* WorkClassName(WorkClass work_class) {
  return work_class == WorkClass::kQuery ? "query" : "update";
}

AdmissionController::AdmissionController(const Options& options)
    : options_(options) {}

void AdmissionController::PublishGauges(int c) {
  MetricsFor(c).queue_depth->Set(static_cast<double>(queued_[c]));
  MetricsFor(c).inflight->Set(static_cast<double>(inflight_[c]));
}

AdmissionController::AdmitResult AdmissionController::Admit(
    WorkClass work_class, const Deadline& deadline) {
  const int c = static_cast<int>(work_class);
  const ClassBudget& budget =
      work_class == WorkClass::kQuery ? options_.query : options_.update;
  const uint64_t enter_ns = Deadline::NowNanos();

  std::unique_lock<std::mutex> lock(mu_);
  AdmitResult result;
  if (closed_) {
    result.outcome = AdmitOutcome::kShuttingDown;
    return result;
  }
  if (inflight_[c] >= budget.max_inflight) {
    if (queued_[c] >= budget.max_queue) {
      // Queue full: shed instantly, hinting a backoff proportional to how
      // deep the overload already is.
      result.outcome = AdmitOutcome::kShed;
      result.retry_after_ms =
          options_.retry_after_base_ms *
          (1.0 + static_cast<double>(queued_[c]) /
                     static_cast<double>(std::max<size_t>(budget.max_queue, 1)));
      MetricsFor(c).shed->Add(1);
      return result;
    }
    ++queued_[c];
    PublishGauges(c);
    const auto can_run = [&] {
      return closed_ || inflight_[c] < budget.max_inflight;
    };
    if (deadline.infinite()) {
      slot_freed_.wait(lock, can_run);
    } else {
      // Wait no longer than the request's own budget: a request whose
      // deadline passes in the queue must not consume an execution slot.
      const double remaining = deadline.remaining_millis();
      if (remaining <= 0 ||
          !slot_freed_.wait_for(
              lock, std::chrono::duration<double, std::milli>(remaining),
              can_run)) {
        --queued_[c];
        PublishGauges(c);
        result.outcome = AdmitOutcome::kQueueTimeout;
        result.queued_ms =
            static_cast<double>(Deadline::NowNanos() - enter_ns) / 1e6;
        MetricsFor(c).queue_timeout->Add(1);
        return result;
      }
    }
    --queued_[c];
    if (closed_) {
      PublishGauges(c);
      result.outcome = AdmitOutcome::kShuttingDown;
      return result;
    }
  }
  ++inflight_[c];
  PublishGauges(c);
  result.outcome = AdmitOutcome::kAdmitted;
  result.ticket = Ticket(this, work_class);
  result.queued_ms = static_cast<double>(Deadline::NowNanos() - enter_ns) / 1e6;
  MetricsFor(c).admitted->Add(1);
  MetricsFor(c).queued_ms->Record(result.queued_ms);
  return result;
}

void AdmissionController::ReleaseSlot(WorkClass work_class) {
  const int c = static_cast<int>(work_class);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_[c];
    PublishGauges(c);
  }
  slot_freed_.notify_all();
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(work_class_);
    controller_ = nullptr;
  }
}

void AdmissionController::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  slot_freed_.notify_all();
}

size_t AdmissionController::queue_depth(WorkClass work_class) const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_[static_cast<int>(work_class)];
}

size_t AdmissionController::inflight(WorkClass work_class) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_[static_cast<int>(work_class)];
}

bool AdmissionController::QueuePressureAtLeast(WorkClass work_class,
                                               double fraction) const {
  const int c = static_cast<int>(work_class);
  const ClassBudget& budget =
      work_class == WorkClass::kQuery ? options_.query : options_.update;
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(queued_[c]) >=
         fraction * static_cast<double>(std::max<size_t>(budget.max_queue, 1));
}

}  // namespace serve
}  // namespace dsig
