// Open-loop load generator for the dsig serving front-end.
//
// RunLoadgen drives a running DsigServer the way real traffic would: each
// sender thread draws a Poisson arrival schedule up front (exponential
// inter-arrivals at rate/threads) and issues each request at its scheduled
// instant regardless of how the previous one fared — the open-loop
// discipline that actually exposes overload, where closed-loop clients
// would politely self-throttle. Latency is measured from the *scheduled*
// arrival to completion, so queueing delay a slow server inflicts is
// charged to it (no coordinated omission).
//
// Failure handling mirrors a well-behaved production client:
//   * RETRY_AFTER   honour the server's hint, then exponential backoff with
//                   jitter, bounded by max_retries;
//   * socket timeout the stream is desynchronized — reconnect, then retry
//                   under the same backoff budget;
//   * DEADLINE_EXCEEDED counts as completed (a typed partial answer);
//   * SHUTTING_DOWN / ERROR are terminal for that arrival.
//
// The report carries everything the serve-smoke harness asserts on,
// including max_acked_seq: the highest WAL sequence number any OK update
// response carried. After kill -9, recovery must replay at least this far —
// that is the definition of "no acknowledged update lost".
#ifndef DSIG_SERVE_LOADGEN_H_
#define DSIG_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/status.h"

namespace dsig {
namespace serve {

// Blocking client over one connection. Not thread-safe; one per sender.
class ServeClient {
 public:
  ServeClient() = default;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  // Connects to 127.0.0.1:port with `timeout_ms` as both the connect and
  // the per-call receive timeout (<= 0 blocks forever).
  Status Connect(uint16_t port, double timeout_ms);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // One request/response round trip. On a receive timeout, sets *timed_out
  // (when non-null), closes the connection (the stream is desynchronized —
  // the late response could otherwise be read as the answer to the next
  // request), and returns an error.
  StatusOr<Response> Call(const Request& request, bool* timed_out = nullptr);

 private:
  int fd_ = -1;
};

// One tenant's slice of a multi-tenant workload: its wire id and its own
// open-loop arrival rate.
struct TenantLoad {
  std::string name = "default";
  uint32_t tenant_id = 0;  // rides the DSRV header tenant tail
  double rate = 0;         // arrivals/second for this tenant
};

struct LoadgenOptions {
  uint16_t port = 0;
  double duration_s = 5;
  double rate = 200;            // total arrivals/second across all threads
  int threads = 4;              // sender threads (per tenant)
  double update_fraction = 0.1;  // remaining arrivals are queries
  double join_fraction = 0.02;   // of arrivals; joins are the expensive tail
  double deadline_ms = 100;      // stamped on every request; <= 0 = none
  double timeout_ms = 1000;      // client-side socket timeout per attempt
  int max_retries = 3;
  // Decorrelated-jitter retry backoff: each sleep is drawn uniformly from
  // [base, 3 * previous_sleep] and clamped to the cap, floored by the
  // server's RETRY_AFTER hint. Unlike stepped exponential backoff, a shed
  // storm's retries spread out instead of resynchronizing at 2^k * base.
  double backoff_base_ms = 10;
  double backoff_cap_ms = 1000;
  uint64_t seed = 42;
  uint32_t knn_k = 8;
  double epsilon = 0;            // <= 0: use the server's Ping suggestion
  std::string report_path;       // non-empty: write a BenchReport JSON here

  // Multi-tenant workloads: one open-loop generator per entry, each with
  // `threads` senders at the entry's own rate. Empty runs one default
  // tenant (id 0) at `rate` — the single-tenant behavior.
  std::vector<TenantLoad> tenants;
};

// Per-tenant slice of a run; the isolation chaos test asserts on these.
struct TenantLoadReport {
  std::string name;
  uint32_t tenant_id = 0;
  uint64_t arrivals = 0;
  uint64_t completed = 0;
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t shed = 0;
  uint64_t retried = 0;
  uint64_t reconnects = 0;
  uint64_t timeouts = 0;
  uint64_t failed = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
};

struct LoadgenReport {
  uint64_t arrivals = 0;           // scheduled arrivals issued
  uint64_t completed = 0;          // OK or DEADLINE_EXCEEDED answers
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;  // typed partials (still completed)
  uint64_t shed = 0;               // RETRY_AFTER responses observed
  uint64_t retried = 0;            // retry attempts issued
  uint64_t reconnects = 0;         // mid-run connection re-establishments
  uint64_t timeouts = 0;           // client-side socket timeouts
  uint64_t shutting_down = 0;
  uint64_t errors = 0;             // kError responses
  uint64_t protocol_errors = 0;    // undecodable/socket-broken exchanges
  uint64_t failed = 0;             // arrivals abandoned (retries exhausted,
                                   // shutdown, or error)
  uint64_t degraded = 0;           // answers tagged kOverload / kDecodeFault
  uint64_t updates_acked = 0;      // OK update responses
  uint64_t max_acked_seq = 0;      // highest update_seq among them
  double p50_ms = 0;               // completed-arrival latency percentiles,
  double p99_ms = 0;               // scheduled-arrival -> answer
  double mean_ms = 0;
  double max_ms = 0;
  double actual_duration_s = 0;

  // Client/server consistency check: the server's own windowed serve-path
  // stats, fetched via kStats right after the run. The client p99 includes
  // queue wait, network, and retries; the server's windowed p99 covers
  // execution only — so the comparison is
  //
  //   divergence_ms = p99_ms - (server_window_p99_ms + server_queued_p99_ms)
  //
  // and a large positive residual means latency the server cannot see
  // (client-side backoff, socket stalls), flagged in the report.
  bool server_stats_ok = false;    // the post-run kStats fetch succeeded
  double server_window_p50_ms = 0;
  double server_window_p99_ms = 0;
  double server_queued_p99_ms = 0;
  double server_lifetime_p99_ms = 0;
  uint64_t server_window_count = 0;
  double divergence_ms = 0;
  bool divergence_flagged = false;

  // One entry per configured tenant (empty for single-tenant runs).
  std::vector<TenantLoadReport> tenants;
};

// Runs the workload against a live server; fails only on setup errors
// (cannot connect / Ping at all). Writes options.report_path if set and
// prints nothing — callers print via FormatLoadgenSummary.
StatusOr<LoadgenReport> RunLoadgen(const LoadgenOptions& options);

// One greppable "LOADGEN_SUMMARY key=value ..." line, the interface the
// serve-smoke script scrapes — followed by one "TENANT_SUMMARY tenant=..."
// line per configured tenant on multi-tenant runs.
std::string FormatLoadgenSummary(const LoadgenReport& report);

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_LOADGEN_H_
