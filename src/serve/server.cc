#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "core/hub_labels.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/op_counters.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "serve/degrade.h"
#include "serve/net.h"
#include "util/deadline.h"
#include "util/hexid.h"
#include "util/logging.h"

namespace dsig {
namespace serve {
namespace {

struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* ok;
  obs::Counter* retry_after;
  obs::Counter* deadline_exceeded;
  obs::Counter* shutting_down;
  obs::Counter* errors;
  obs::Counter* protocol_errors;
  obs::Counter* degraded;
  obs::Counter* connections;
  obs::Histogram* latency_ms;
};

const ServeMetrics& Metrics() {
  static const ServeMetrics m = {
      obs::MetricsRegistry::Global().GetCounter("serve.requests"),
      obs::MetricsRegistry::Global().GetCounter("serve.ok"),
      obs::MetricsRegistry::Global().GetCounter("serve.retry_after"),
      obs::MetricsRegistry::Global().GetCounter("serve.deadline_exceeded"),
      obs::MetricsRegistry::Global().GetCounter("serve.shutting_down"),
      obs::MetricsRegistry::Global().GetCounter("serve.errors"),
      obs::MetricsRegistry::Global().GetCounter("serve.protocol_errors"),
      obs::MetricsRegistry::Global().GetCounter("serve.degraded"),
      obs::MetricsRegistry::Global().GetCounter("serve.connections"),
      obs::MetricsRegistry::Global().GetHistogram("serve.latency_ms"),
  };
  return m;
}

// Hostile-client counters: slow peers tripping frame deadlines, writes that
// never drain, idle reaps, and accept-loop backpressure episodes.
struct NetHardeningMetrics {
  obs::Counter* read_timeouts;
  obs::Counter* write_timeouts;
  obs::Counter* idle_timeouts;
  obs::Counter* accept_waits;
};

const NetHardeningMetrics& NetMetrics() {
  static const NetHardeningMetrics m = {
      obs::MetricsRegistry::Global().GetCounter("serve.net.read_timeouts"),
      obs::MetricsRegistry::Global().GetCounter("serve.net.write_timeouts"),
      obs::MetricsRegistry::Global().GetCounter("serve.net.idle_timeouts"),
      obs::MetricsRegistry::Global().GetCounter("serve.net.accept_waits"),
  };
  return m;
}

Response ErrorResponse(uint64_t id, std::string message) {
  Response response;
  response.id = id;
  response.status = ResponseStatus::kError;
  response.text = std::move(message);
  return response;
}

// Server-minted trace ids for clients that sent none: splitmix64 over a
// time-seeded counter, | 1 so 0 keeps meaning "absent".
uint64_t MintTraceId() {
  static std::atomic<uint64_t> counter{obs::MonotonicNanos()};
  uint64_t x = counter.fetch_add(0x9e3779b97f4a7c15ull,
                                 std::memory_order_relaxed);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x | 1;
}

// SLOs installed when ServerOptions.slo is empty: the interactive query
// classes get tight budgets, the join scan and durable updates looser ones.
std::vector<obs::SloObjective> DefaultObjectives() {
  return {
      {"knn", 50, 0.99},
      {"range", 50, 0.99},
      {"join", 250, 0.99},
      {"update", 100, 0.999},
  };
}

// The window FillObservability summarizes over (matches the registry's
// middle export window).
constexpr uint64_t kServeWindowNs = 60ull * 1000 * 1000 * 1000;

}  // namespace

DsigServer::DsigServer(const Deployment& deployment,
                       const ServerOptions& options)
    : deployment_(deployment),
      options_(options),
      admission_(options.admission),
      slo_(std::make_unique<obs::SloEngine>(
          options.slo.empty() ? DefaultObjectives() : options.slo,
          options.slo_windows)),
      window_latency_ms_(obs::MetricsRegistry::Global().GetWindowedHistogram(
          "serve.latency_ms")),
      window_queued_ms_(obs::MetricsRegistry::Global().GetWindowedHistogram(
          "serve.queued_ms")) {
  // Per-tenant health: one SLO class and one windowed latency ring per
  // configured tenant, indexed by tenant id. Names come from the bounded
  // admission config, so the cardinality here is fixed at startup.
  std::vector<obs::SloObjective> tenant_objectives = options.tenant_slo;
  if (tenant_objectives.empty()) {
    for (uint32_t t = 0; t < admission_.num_tenants(); ++t) {
      tenant_objectives.push_back(
          {"tenant_" + admission_.TenantName(t), 100, 0.99});
    }
  }
  tenant_slo_ = std::make_unique<obs::SloEngine>(std::move(tenant_objectives),
                                                 options.slo_windows);
  for (uint32_t t = 0; t < admission_.num_tenants(); ++t) {
    tenant_window_latency_.push_back(
        obs::MetricsRegistry::Global().GetWindowedHistogram(
            "serve.tenant." + admission_.TenantName(t) + ".latency_ms"));
  }
}

StatusOr<std::unique_ptr<DsigServer>> DsigServer::Start(
    const Deployment& deployment, const ServerOptions& options) {
  if (deployment.graph == nullptr || deployment.index == nullptr) {
    return Status::InvalidArgument("Start: deployment needs graph and index");
  }
  // Announce the optional exact-distance label tier once and seed the
  // labels.* gauges so the very first kStats report is self-describing even
  // if no exact-distance query has run yet.
  const HubLabels* labels = deployment.index->hub_labels();
  PublishHubLabelMetrics(labels);
  if (labels != nullptr && labels->ready()) {
    const HubLabelStats ls = labels->stats();
    DSIG_LOG(Info) << "hub-label tier attached: " << ls.entries
                   << " entries, avg " << ls.avg_label_entries
                   << "/node, " << (ls.bytes / 1024) << " KB"
                   << (labels->stale() ? " (stale, demoted)" : "");
  } else {
    DSIG_LOG(Info) << "no hub-label tier: exact distances use "
                      "link-chase/Dijkstra only";
  }
  std::unique_ptr<DsigServer> server(new DsigServer(deployment, options));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind: " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname: " + err);
  }

  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

DsigServer::~DsigServer() { Stop(); }

void DsigServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (or something unrecoverable happened
      // to it); either way this thread is done.
      return;
    }
    Metrics().connections->Add(1);
    std::unique_lock<std::mutex> lock(connections_mu_);
    if (options_.max_connections > 0 &&
        connection_fds_.size() >= options_.max_connections) {
      // Backpressure, not rejection: hold the accepted socket un-serviced
      // until a slot frees. Further clients stack up in the listen backlog
      // behind it, which is exactly the signal a flooding client deserves.
      NetMetrics().accept_waits->Add(1);
      connections_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               connection_fds_.size() < options_.max_connections;
      });
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void DsigServer::ConnectionLoop(int fd) {
  std::vector<uint8_t> payload;
  std::vector<uint8_t> out;
  for (;;) {
    uint8_t header[kFrameHeaderBytes];
    // Idle wait: a persistent connection may sit arbitrarily long between
    // frames (bounded only by idle_timeout_ms), so the first byte gets its
    // own read with the idle budget.
    const NetIoResult first = RecvAll(fd, header, 1, options_.idle_timeout_ms);
    if (!first.ok) {
      if (first.timed_out) {
        NetMetrics().idle_timeouts->Add(1);
      } else if (!first.clean_eof) {
        Metrics().protocol_errors->Add(1);
      }
      break;
    }
    // Slowloris defense: once a frame has started, the rest of the header
    // and the payload must land within the per-frame read budget — a peer
    // dribbling one byte per timeout cannot hold this thread forever.
    const NetIoResult rest =
        RecvAll(fd, header + 1, sizeof(header) - 1, options_.read_timeout_ms);
    if (!rest.ok) {
      if (rest.timed_out) NetMetrics().read_timeouts->Add(1);
      Metrics().protocol_errors->Add(1);
      break;
    }
    uint32_t payload_len = 0;
    const Status header_status = CheckFrameHeader(header, &payload_len);
    if (!header_status.ok()) {
      // The stream is desynchronized; there is no way to resync a
      // length-prefixed protocol, so answer once and hang up.
      Metrics().protocol_errors->Add(1);
      out.clear();
      EncodeResponse(ErrorResponse(0, header_status.ToString()), &out);
      SendAll(fd, out.data(), out.size(), options_.write_timeout_ms);
      break;
    }
    payload.resize(payload_len);
    if (payload_len > 0) {
      const NetIoResult body =
          RecvAll(fd, payload.data(), payload_len, options_.read_timeout_ms);
      if (!body.ok) {
        if (body.timed_out) NetMetrics().read_timeouts->Add(1);
        Metrics().protocol_errors->Add(1);
        break;
      }
    }
    StatusOr<Request> request = DecodeRequest(payload.data(), payload_len);
    if (!request.ok()) {
      Metrics().protocol_errors->Add(1);
      out.clear();
      EncodeResponse(ErrorResponse(0, request.status().ToString()), &out);
      SendAll(fd, out.data(), out.size(), options_.write_timeout_ms);
      break;
    }

    const Response response = Handle(*request);
    out.clear();
    EncodeResponse(response, &out);
    const NetIoResult sent =
        SendAll(fd, out.data(), out.size(), options_.write_timeout_ms);
    if (!sent.ok) {
      // A peer that will not drain its receive buffer is holding this
      // thread hostage; cut it loose.
      if (sent.timed_out) NetMetrics().write_timeouts->Add(1);
      break;
    }
  }
  // Deregister before closing: Stop() only shutdown()s fds still in the
  // list, so a closed-and-reused descriptor number is never touched. The
  // notify feeds the accept loop's max_connections backpressure wait.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
  connections_cv_.notify_all();
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

Response DsigServer::Handle(const Request& request) {
  const uint64_t start_ns = Deadline::NowNanos();
  Metrics().requests->Add(1);

  // Resolve the tenant up front: unknown ids fold into the default tenant
  // (bounded metric cardinality), and every response echoes the resolved id
  // so clients can see which fair-share bucket billed them.
  const uint32_t tenant = admission_.ResolveTenant(request.tenant_id);

  Response response;
  response.id = request.id;
  response.trace_id =
      request.trace_id != 0 ? request.trace_id : MintTraceId();
  response.tenant_id = tenant;

  // Ping, Stats, and Slo are health-check plumbing: constant-cost, never
  // queued, answered even while draining (an orchestrator probing a
  // draining server should get an answer, not a connection error).
  if (request.type == RequestType::kPing) {
    response.num_nodes = deployment_.graph->num_nodes();
    response.num_objects = deployment_.index->num_objects();
    const CategoryPartition& partition = deployment_.index->partition();
    response.suggested_epsilon =
        CategoryMidpoint(partition, partition.num_categories() / 2);
    FillObservability(&response);
    Metrics().ok->Add(1);
    return response;
  }
  if (request.type == RequestType::kStats) {
    slo_->PublishGauges();
    tenant_slo_->PublishGauges();
    response.text = "{\"metrics\": " + obs::MetricsRegistry::Global().ToJson() +
                    ", \"slo\": " + slo_->ReportJson() +
                    ", \"tenant_slo\": " + tenant_slo_->ReportJson() + "}";
    FillObservability(&response);
    Metrics().ok->Add(1);
    return response;
  }
  if (request.type == RequestType::kSlo) {
    response.text = SloText();
    FillObservability(&response);
    Metrics().ok->Add(1);
    return response;
  }

  if (stopping_.load(std::memory_order_relaxed)) {
    response.status = ResponseStatus::kShuttingDown;
    Metrics().shutting_down->Add(1);
    return response;
  }

  const double budget_ms = request.deadline_ms > 0
                               ? request.deadline_ms
                               : options_.default_deadline_ms;
  const Deadline deadline =
      budget_ms > 0 ? Deadline::AfterMillis(budget_ms) : Deadline::Infinite();

  const WorkClass work_class = request.type == RequestType::kUpdate
                                   ? WorkClass::kUpdate
                                   : WorkClass::kQuery;

  // The request's trace: every request collects totals + op/buffer deltas
  // (light, near-free); every trace_sample_period-th request upgrades to a
  // full span-rooting trace for phase attribution. Either way emission
  // happens only for SLO breaches (tail-based) via the slow-query log.
  const bool sample_phases =
      options_.trace_sample_period > 0 &&
      trace_seq_.fetch_add(1, std::memory_order_relaxed) %
              options_.trace_sample_period ==
          0;
  obs::QueryTrace trace(nullptr,
                        sample_phases ? obs::QueryTrace::Mode::kCollectRoot
                                      : obs::QueryTrace::Mode::kCollectLight);

  AdmissionController::AdmitResult admit;
  bool executed = false;
  bool handled = false;

  // Single-flight: checked BEFORE admission, so followers of a hot query
  // consume no execution slot and no queue space at all.
  std::unique_ptr<LeaderGuard> leader;
  if (options_.coalesce && Coalescible(request)) {
    const std::string key = CoalesceKey(request);
    SingleFlight::JoinResult join = flights_.Join(key, deadline);
    if (join.leader) {
      leader = std::make_unique<LeaderGuard>(&flights_, key);
      if (options_.coalesce_hold_for_test_ms > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            options_.coalesce_hold_for_test_ms));
      }
    } else if (join.ready) {
      // The leader's answer, re-stamped with THIS request's identity.
      const uint64_t trace_id = response.trace_id;
      response = std::move(join.response);
      response.id = request.id;
      response.trace_id = trace_id;
      response.tenant_id = tenant;
      executed = true;  // a real answer whose latency the caller observed
      handled = true;
    } else if (deadline.expired()) {
      // Waited the whole budget on a leader that never delivered.
      response.status = ResponseStatus::kDeadlineExceeded;
      handled = true;
    }
    // else: the leader abandoned (shed, errored) — fall through and run
    // this request normally on whatever budget remains.
  }

  if (!handled) {
    admit = admission_.Admit(work_class, tenant, deadline);
    switch (admit.outcome) {
      case AdmitOutcome::kShed:
        response.status = ResponseStatus::kRetryAfter;
        response.retry_after_ms = admit.retry_after_ms;
        break;
      case AdmitOutcome::kQueueTimeout:
        response.status = ResponseStatus::kDeadlineExceeded;
        break;
      case AdmitOutcome::kShuttingDown:
        response.status = ResponseStatus::kShuttingDown;
        break;
      case AdmitOutcome::kAdmitted: {
        // Plan: decide exact vs degraded BEFORE executing, from THIS
        // tenant's queue pressure at admission time — one tenant's flood
        // must not degrade another tenant's answers. Updates always run
        // the exact path — degrading a mutation makes no sense.
        const bool degraded =
            work_class == WorkClass::kQuery &&
            admission_.QueuePressureAtLeast(WorkClass::kQuery, tenant,
                                            options_.degrade_queue_fraction);
        const uint64_t trace_id = response.trace_id;
        if (request.type == RequestType::kUpdate) {
          response = ExecuteUpdate(request);
        } else {
          response = ExecuteQuery(request, deadline, degraded);
        }
        response.trace_id = trace_id;  // Execute* builds a fresh Response
        response.tenant_id = tenant;
        admit.ticket.Release();
        executed = true;
        break;
      }
    }
    if (leader != nullptr && response.status == ResponseStatus::kOk) {
      // Publish only complete answers; sheds, errors, and partial results
      // abandon the flight (via the guard) so followers fend for
      // themselves instead of inheriting this request's failure.
      leader->Publish(response);
    }
  }
  const obs::TraceSummary summary = trace.Finish();

  switch (response.status) {
    case ResponseStatus::kOk:
      Metrics().ok->Add(1);
      break;
    case ResponseStatus::kRetryAfter:
      Metrics().retry_after->Add(1);
      break;
    case ResponseStatus::kDeadlineExceeded:
      Metrics().deadline_exceeded->Add(1);
      break;
    case ResponseStatus::kShuttingDown:
      Metrics().shutting_down->Add(1);
      break;
    case ResponseStatus::kError:
      Metrics().errors->Add(1);
      break;
  }
  if (response.degradation != Degradation::kNone) Metrics().degraded->Add(1);

  const double total_ms =
      static_cast<double>(Deadline::NowNanos() - start_ns) / 1e6;
  if (executed) {
    // Lifetime and windowed latency cover EXECUTED requests only, matching
    // the pre-window semantics: a shed request's ~0ms turnaround says
    // nothing about query latency. Queue wait gets its own window.
    Metrics().latency_ms->Record(total_ms);
    window_latency_ms_->Record(total_ms);
    window_queued_ms_->Record(admit.queued_ms);
    tenant_window_latency_[tenant]->Record(total_ms);
  }

  // SLO accounting for every terminal outcome except shutdown (draining is
  // operator intent, not error budget). Breach + token = slow-query trace.
  // The per-tenant engine mirrors the per-class one: the isolation proof is
  // that the compliant tenant's class stays kOk while the flooder burns.
  const int slo_class = slo_->ClassIndex(RequestTypeName(request.type));
  if (response.status != ResponseStatus::kShuttingDown) {
    const bool ok = response.status == ResponseStatus::kOk;
    tenant_slo_->Record(static_cast<int>(tenant), total_ms, ok, executed);
    if (slo_class >= 0) {
      const bool breach = slo_->Record(slo_class, total_ms, ok, executed);
      if (breach && options_.slow_trace_sink != nullptr && AllowSlowTrace()) {
        EmitSlowTrace(request, response, summary, admit.queued_ms, total_ms,
                      slo_class);
      }
    }
  }
  return response;
}

void DsigServer::FillObservability(Response* response) const {
  obs::Histogram latency;
  window_latency_ms_->SnapshotWindow(kServeWindowNs, &latency);
  response->window.p50_ms = latency.Percentile(50);
  response->window.p99_ms = latency.Percentile(99);
  response->window.count = latency.Count();
  obs::Histogram queued;
  window_queued_ms_->SnapshotWindow(kServeWindowNs, &queued);
  response->window.queued_p99_ms = queued.Percentile(99);
  response->window.lifetime_p99_ms = Metrics().latency_ms->Percentile(99);
  response->slo = slo_->ReportAll();
  // Tenant health rides the same wire field; "tenant_" names keep the two
  // engines' classes distinguishable on the client side.
  std::vector<obs::SloClassHealth> tenants = tenant_slo_->ReportAll();
  response->slo.insert(response->slo.end(),
                       std::make_move_iterator(tenants.begin()),
                       std::make_move_iterator(tenants.end()));
}

std::string DsigServer::SloText() const {
  const std::vector<obs::SloClassHealth> classes = slo_->ReportAll();
  char line[512];
  std::string text;
  for (const obs::SloClassHealth& c : classes) {
    std::snprintf(
        line, sizeof(line),
        "SLO_HEALTH class=%s state=%s budget_ms=%.1f fast_burn=%.2f "
        "slow_burn=%.2f window_p99_ms=%.3f lifetime_p99_ms=%.3f "
        "window_count=%llu\n",
        c.name.c_str(), obs::SloStateName(c.state), c.latency_budget_ms,
        c.fast_burn, c.slow_burn, c.window_p99_ms, c.lifetime_p99_ms,
        static_cast<unsigned long long>(c.window_count));
    text += line;
  }
  for (const obs::SloClassHealth& c : tenant_slo_->ReportAll()) {
    std::snprintf(
        line, sizeof(line),
        "TENANT_HEALTH class=%s state=%s budget_ms=%.1f fast_burn=%.2f "
        "slow_burn=%.2f availability=%.4f window_p99_ms=%.3f "
        "window_count=%llu\n",
        c.name.c_str(), obs::SloStateName(c.state), c.latency_budget_ms,
        c.fast_burn, c.slow_burn, c.availability, c.window_p99_ms,
        static_cast<unsigned long long>(c.window_count));
    text += line;
  }
  obs::Histogram latency;
  window_latency_ms_->SnapshotWindow(kServeWindowNs, &latency);
  std::snprintf(
      line, sizeof(line),
      "SLO_OVERALL state=%s window_p99_ms=%.3f lifetime_p99_ms=%.3f "
      "window_count=%llu\n",
      obs::SloStateName(obs::SloEngine::Overall(classes)),
      latency.Percentile(99), Metrics().latency_ms->Percentile(99),
      static_cast<unsigned long long>(latency.Count()));
  text += line;
  return text;
}

bool DsigServer::AllowSlowTrace() {
  std::lock_guard<std::mutex> lock(slow_trace_mu_);
  const uint64_t now_ns = obs::MonotonicNanos();
  if (slow_trace_refill_ns_ == 0) {
    slow_trace_refill_ns_ = now_ns;
    slow_trace_tokens_ = options_.slow_trace_qps;  // full initial burst
  }
  const double elapsed_s =
      static_cast<double>(now_ns - slow_trace_refill_ns_) * 1e-9;
  slow_trace_refill_ns_ = now_ns;
  slow_trace_tokens_ =
      std::min(options_.slow_trace_qps,
               slow_trace_tokens_ + elapsed_s * options_.slow_trace_qps);
  if (slow_trace_tokens_ < 1.0) return false;
  slow_trace_tokens_ -= 1.0;
  return true;
}

void DsigServer::EmitSlowTrace(const Request& request,
                               const Response& response,
                               const obs::TraceSummary& summary,
                               double queued_ms, double total_ms,
                               int slo_class) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("trace_id", HexId(response.trace_id));
  w.Field("request_id", request.id);
  w.Field("class", RequestTypeName(request.type));
  w.Field("status", ResponseStatusName(response.status));
  w.Field("degradation", DegradationName(response.degradation));
  w.Field("total_ms", total_ms);
  w.Field("slo_budget_ms", slo_->objective(slo_class).latency_budget_ms);
  w.Key("spans").BeginObject();
  w.Field("queue_wait_ms", queued_ms);
  // False when this request was a light trace: phases_ms then reports the
  // whole execution as "other" rather than a real attribution.
  w.Key("sampled_phases").Bool(summary.has_phases);
  w.Key("phases_ms").BeginObject();
  if (summary.collected) {
    for (int p = 0; p < obs::kNumPhases; ++p) {
      w.Field(obs::PhaseName(static_cast<obs::Phase>(p)),
              summary.phases_ms[p]);
    }
  }
  w.EndObject();
  w.EndObject();
  w.Key("ops").BeginObject();
  summary.ops.ForEach(
      [&w](const char* name, uint64_t value) { w.Field(name, value); });
  w.EndObject();
  w.Key("buffer").BeginObject();
  w.Field("hits", summary.buffer.hits);
  w.Field("misses", summary.buffer.misses);
  w.Field("evictions", summary.buffer.evictions);
  w.Field("failed_reads", summary.buffer.failed_reads);
  w.EndObject();
  w.EndObject();

  std::string json = w.Take();
  json += '\n';
  // One fwrite per line under the bucket mutex: concurrent breaching
  // requests cannot interleave mid-record.
  std::lock_guard<std::mutex> lock(slow_trace_mu_);
  std::fwrite(json.data(), 1, json.size(), options_.slow_trace_sink);
  std::fflush(options_.slow_trace_sink);
}

Response DsigServer::ExecuteQuery(const Request& request,
                                  const Deadline& deadline, bool degraded) {
  Response response;
  response.id = request.id;
  const SignatureIndex& index = *deployment_.index;

  if (request.node >= deployment_.graph->num_nodes()) {
    return ErrorResponse(request.id, "query node out of range");
  }
  if ((request.type == RequestType::kRange ||
       request.type == RequestType::kJoin) &&
      !(std::isfinite(request.epsilon) && request.epsilon >= 0)) {
    return ErrorResponse(request.id, "epsilon must be finite and >= 0");
  }

  // An already-dead request must cost nothing: no row read, no buffer-pool
  // traffic. (deadline_test.cc pins this with buffer-pool stats.)
  if (deadline.expired()) {
    response.status = ResponseStatus::kDeadlineExceeded;
    return response;
  }

  const DeadlineScope scope(deadline);
  // Decode-fault degradation is observed, not planned: diff this thread's
  // fallback counter across the query. OpCounters are thread-local, so the
  // delta is exactly this request's fallbacks.
  const uint64_t fallbacks_before = GlobalOpCounters().decode_fallbacks;

  switch (request.type) {
    case RequestType::kKnn: {
      const size_t k =
          std::min<size_t>(request.k, deployment_.index->num_objects());
      if (degraded) {
        DegradedKnnResult result = DegradedKnnQuery(index, request.node, k);
        response.objects = std::move(result.objects);
        response.distances = std::move(result.approx_distances);
        response.degradation = Degradation::kOverload;
      } else {
        const KnnResultType type =
            request.knn_type == 3 ? KnnResultType::kType3
            : request.knn_type == 2 ? KnnResultType::kType2
                                    : KnnResultType::kType1;
        KnnResult result = SignatureKnnQuery(index, request.node, k, type);
        response.objects = std::move(result.objects);
        response.distances.assign(result.distances.begin(),
                                  result.distances.end());
        if (result.deadline_exceeded) {
          response.status = ResponseStatus::kDeadlineExceeded;
        }
      }
      break;
    }
    case RequestType::kRange: {
      RangeQueryResult result =
          degraded ? DegradedRangeQuery(index, request.node, request.epsilon)
                   : SignatureRangeQuery(index, request.node, request.epsilon);
      response.objects = std::move(result.objects);
      if (degraded) {
        response.degradation = Degradation::kOverload;
      } else if (result.deadline_exceeded) {
        response.status = ResponseStatus::kDeadlineExceeded;
      }
      break;
    }
    case RequestType::kJoin: {
      // Self-join: the deployment serves one dataset, joined with itself.
      JoinResult result =
          degraded
              ? DegradedEpsilonJoin(index, index, request.node,
                                    request.epsilon)
              : SignatureEpsilonJoin(index, index, request.node,
                                     request.epsilon);
      response.pair_left.reserve(result.pairs.size());
      response.pair_right.reserve(result.pairs.size());
      for (const JoinPair& pair : result.pairs) {
        response.pair_left.push_back(pair.left);
        response.pair_right.push_back(pair.right);
      }
      if (degraded) {
        response.degradation = Degradation::kOverload;
      } else if (result.deadline_exceeded) {
        response.status = ResponseStatus::kDeadlineExceeded;
      }
      break;
    }
    default:
      return ErrorResponse(request.id, "unsupported query type");
  }

  if (response.degradation == Degradation::kNone &&
      GlobalOpCounters().decode_fallbacks > fallbacks_before) {
    response.degradation = Degradation::kDecodeFault;
  }
  return response;
}

Response DsigServer::ExecuteUpdate(const Request& request) {
  Response response;
  response.id = request.id;
  if (deployment_.updater == nullptr) {
    return ErrorResponse(request.id, "server is read-only (no updater)");
  }
  UpdateRecord record;
  record.op = request.update_op;
  record.a = request.a;
  record.b = request.b;
  record.weight = request.weight;

  // DurableUpdater is single-writer; connection threads serialize here.
  // Queries are unaffected (epoch snapshots), which is the whole point of
  // the PR 5 isolation work.
  std::lock_guard<std::mutex> lock(update_mu_);
  StatusOr<UpdateStats> applied = deployment_.updater->Apply(record);
  if (!applied.ok()) {
    return ErrorResponse(request.id, applied.status().ToString());
  }
  // next_seq() is the seq of the NEXT record; ours, just applied under the
  // same lock, committed at next_seq() - 1. This is the durability ack the
  // chaos harness checks against recovery.
  response.update_seq = deployment_.updater->next_seq() - 1;
  response.rows_rewritten = applied->rows_rewritten;
  return response;
}

void DsigServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Already stopping/stopped; wait for the first Stop to have finished
    // joining by taking the connections mutex after the accept thread dies.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }

  // 1. New requests fail fast: queued waiters wake with kShuttingDown and
  //    frames arriving after this answer SHUTTING_DOWN.
  admission_.Close();

  // 2. Stop accepting: shutdown() unblocks accept(); close() releases the
  //    fd; the notify unblocks an accept thread parked in max_connections
  //    backpressure (it re-checks stopping_ under the mutex).
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  { std::lock_guard<std::mutex> lock(connections_mu_); }
  connections_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 3. Drain: wait (bounded) for in-flight work to finish so every admitted
  //    request gets its response bytes out.
  const uint64_t drain_deadline_ns =
      Deadline::NowNanos() +
      static_cast<uint64_t>(std::max(options_.drain_timeout_ms, 0.0) * 1e6);
  while (admission_.inflight(WorkClass::kQuery) +
             admission_.inflight(WorkClass::kUpdate) >
         0) {
    if (Deadline::NowNanos() >= drain_deadline_ns) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 4. Unblock connection threads parked in recv() and join them.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

}  // namespace serve
}  // namespace dsig
