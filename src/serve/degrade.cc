#include "serve/degrade.h"

#include <algorithm>

#include "core/epoch.h"
#include "obs/trace.h"

namespace dsig {
namespace serve {

Weight CategoryMidpoint(const CategoryPartition& partition, int category) {
  const DistanceRange range = partition.RangeOf(category);
  if (range.ub == kInfiniteWeight) {
    const double growth = partition.c() > 1 ? partition.c() : 2.0;
    return range.lb * growth;
  }
  return (range.lb + range.ub) / 2;
}

DegradedKnnResult DegradedKnnQuery(const SignatureIndex& index, NodeId n,
                                   size_t k) {
  DSIG_QUERY_TRACE("knn_degraded");
  const ReadSnapshot snapshot(index.epoch_gate());
  DegradedKnnResult result;
  if (k == 0) return result;
  const SignatureRow row = index.ReadRow(n);
  k = std::min(k, row.size());

  const int m_categories = index.partition().num_categories();
  std::vector<std::vector<uint32_t>> buckets(
      static_cast<size_t>(m_categories));
  for (uint32_t o = 0; o < row.size(); ++o) {
    buckets[row[o].category].push_back(o);
  }
  for (int cat = 0; cat < m_categories && result.objects.size() < k; ++cat) {
    const Weight midpoint = CategoryMidpoint(index.partition(), cat);
    for (const uint32_t o : buckets[cat]) {
      if (result.objects.size() >= k) break;
      result.objects.push_back(o);
      result.approx_distances.push_back(midpoint);
    }
  }
  return result;
}

RangeQueryResult DegradedRangeQuery(const SignatureIndex& index, NodeId n,
                                    Weight epsilon) {
  DSIG_QUERY_TRACE("range_degraded");
  const ReadSnapshot snapshot(index.epoch_gate());
  RangeQueryResult result;
  const SignatureRow row = index.ReadRow(n);
  const CategoryPartition& partition = index.partition();
  for (uint32_t o = 0; o < row.size(); ++o) {
    const DistanceRange range = partition.RangeOf(row[o].category);
    if (range.ub != kInfiniteWeight && range.ub <= epsilon) {
      result.objects.push_back(o);
      continue;
    }
    if (range.lb > epsilon) continue;
    // Straddling: decide by midpoint instead of backtracking.
    ++result.refined;
    if (CategoryMidpoint(partition, row[o].category) <= epsilon) {
      result.objects.push_back(o);
    }
  }
  return result;
}

JoinResult DegradedEpsilonJoin(const SignatureIndex& left,
                               const SignatureIndex& right, NodeId n,
                               Weight epsilon) {
  DSIG_QUERY_TRACE("join_degraded");
  const ReadSnapshot left_snapshot(left.epoch_gate());
  const ReadSnapshot right_snapshot(right.epoch_gate());
  DSIG_CHECK_EQ(&left.graph(), &right.graph())
      << "join requires indexes over the same network";
  JoinResult result;
  const SignatureRow left_row = left.ReadRow(n);
  const SignatureRow right_row = right.ReadRow(n);
  const CategoryPartition& lp = left.partition();
  const CategoryPartition& rp = right.partition();
  for (uint32_t a = 0; a < left_row.size(); ++a) {
    const DistanceRange ra = lp.RangeOf(left_row[a].category);
    const Weight mid_a = CategoryMidpoint(lp, left_row[a].category);
    for (uint32_t b = 0; b < right_row.size(); ++b) {
      if (left.object_node(a) == right.object_node(b)) {
        result.pairs.push_back({a, b});
        continue;
      }
      const DistanceRange rb = rp.RangeOf(right_row[b].category);
      // Triangle bounds on category ranges, as in the exact join.
      Weight lower = 0;
      if (ra.ub != kInfiniteWeight) lower = std::max(lower, rb.lb - ra.ub);
      if (rb.ub != kInfiniteWeight) lower = std::max(lower, ra.lb - rb.ub);
      if (lower > epsilon) {
        ++result.pruned_by_categories;
        continue;
      }
      if (ra.ub != kInfiniteWeight && rb.ub != kInfiniteWeight &&
          ra.ub + rb.ub <= epsilon) {
        result.pairs.push_back({a, b});
        continue;
      }
      // Straddling: decide by midpoint sum instead of exact evaluation.
      if (mid_a + CategoryMidpoint(rp, right_row[b].category) <= epsilon) {
        result.pairs.push_back({a, b});
      }
    }
  }
  return result;
}

}  // namespace serve
}  // namespace dsig
