// Wire protocol for the dsig serving front-end.
//
// A deliberately small length-prefixed binary protocol over a byte stream
// (TCP): every message is one frame
//
//   magic (u32, "DSRV") · payload_len (u32) · payload
//
// and payloads are flat little-endian structs (PutU32/PutF64 style, matching
// io/binary_io conventions). Requests carry a relative deadline and a
// request id; responses echo the id and carry a typed status:
//
//   kOk                the full answer
//   kRetryAfter        load-shed at admission; retry_after_ms is a hint
//   kDeadlineExceeded  the deadline passed mid-query; payload is the typed
//                      partial result the query layer produced
//   kShuttingDown      the server is draining; do not retry here
//   kError             the request was malformed or inapplicable
//
// plus a degradation tag: kNone for the exact path, kOverload when the
// planner downgraded to the category-only evaluator (serve/degrade.h),
// kDecodeFault when the index recomputed rows via bounded Dijkstra during
// this request (OpCounters::decode_fallbacks delta on the serving thread).
#ifndef DSIG_SERVE_PROTOCOL_H_
#define DSIG_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "util/status.h"

namespace dsig {
namespace serve {

inline constexpr uint32_t kFrameMagic = 0x56525344;  // "DSRV"
inline constexpr uint32_t kMaxFrameBytes = 8u << 20;
inline constexpr size_t kFrameHeaderBytes = 8;

enum class RequestType : uint8_t {
  kPing = 1,
  kKnn = 2,
  kRange = 3,
  kJoin = 4,
  kUpdate = 5,
  kStats = 6,
  kSlo = 7,  // SLO health report: greppable text + structured classes
};

enum class ResponseStatus : uint8_t {
  kOk = 0,
  kRetryAfter = 1,
  kDeadlineExceeded = 2,
  kShuttingDown = 3,
  kError = 4,
};

enum class Degradation : uint8_t {
  kNone = 0,
  kOverload = 1,
  kDecodeFault = 2,
};

const char* RequestTypeName(RequestType type);
const char* ResponseStatusName(ResponseStatus status);
const char* DegradationName(Degradation degradation);

// One request frame. Fields are overloaded by type, mirroring the query
// APIs: kKnn uses node/k/knn_type; kRange and kJoin use node/epsilon;
// kUpdate uses update_op/a/b/weight (core/update_log.h's UpdateRecord).
struct Request {
  RequestType type = RequestType::kPing;
  uint64_t id = 0;
  double deadline_ms = 0;  // relative budget; <= 0 means none

  uint32_t node = 0;
  uint32_t k = 0;
  uint8_t knn_type = 1;  // 1..3, KnnResultType + 1
  double epsilon = 0;

  uint8_t update_op = 0;  // UpdateRecord::Op
  uint32_t a = 0;
  uint32_t b = 0;
  double weight = 0;

  // End-to-end trace id, minted by the client (loadgen) and echoed in the
  // response; 0 means "none" and the server mints one itself. Appended at
  // the end of the wire layout so pre-trace clients interoperate: a payload
  // that ends where the old layout ended decodes with trace_id = 0.
  uint64_t trace_id = 0;

  // Tenant id for fair-share admission (serve/admission.h). Appended after
  // the trace tail, so there are two valid legacy cut points: a pre-trace
  // frame decodes with trace_id = 0 and tenant_id = kDefaultTenant, and a
  // pre-tenant frame decodes with just tenant_id = kDefaultTenant. Ids the
  // server has no configuration for fold into the default tenant — a
  // hostile client cannot mint per-tenant state by inventing ids.
  uint32_t tenant_id = 0;
};

inline constexpr uint32_t kDefaultTenant = 0;

// One response frame.
struct Response {
  uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  Degradation degradation = Degradation::kNone;
  double retry_after_ms = 0;

  // kKnn / kRange / kJoin payloads. kKnn fills objects (+ distances when the
  // request asked for type 1); kRange fills objects; kJoin fills pair_left /
  // pair_right aligned.
  std::vector<uint32_t> objects;
  std::vector<double> distances;
  std::vector<uint32_t> pair_left;
  std::vector<uint32_t> pair_right;

  // kUpdate payload: the WAL sequence number the update committed at (the
  // ack clients key durability on) and the number of rows rewritten.
  uint64_t update_seq = 0;
  uint64_t rows_rewritten = 0;

  // kPing payload: what a client needs to generate a sensible workload.
  uint64_t num_nodes = 0;
  uint64_t num_objects = 0;
  double suggested_epsilon = 0;

  // kStats / kSlo / kError payload: metrics JSON, SLO health text, or an
  // error message.
  std::string text;

  // Echo of the request's trace id (server-minted when the request carried
  // none). Appended at the end of the wire layout with the windowed stats
  // and SLO classes below; an old peer's frame that ends where the old
  // layout ended decodes with all of these at their defaults.
  uint64_t trace_id = 0;

  // Windowed serve-path latency summary (kStats / kSlo / kPing): what the
  // server's rolling 60 s window says right now, so clients can compare
  // their observed tail against the server's own without parsing JSON.
  struct WindowStats {
    double p50_ms = 0;
    double p99_ms = 0;
    uint64_t count = 0;
    double queued_p99_ms = 0;    // admission queue wait, same window
    double lifetime_p99_ms = 0;  // process-lifetime histogram, for contrast
  };
  WindowStats window;

  // Per-class SLO health (kStats / kSlo): machine-readable burn-rate state.
  std::vector<obs::SloClassHealth> slo;

  // The tenant id the server resolved this request to (after folding
  // unknown ids into the default tenant), echoed so clients can see which
  // fair-share bucket billed them. Appended after the SLO classes; frames
  // from pre-tenant servers end before it and decode with the default.
  uint32_t tenant_id = 0;
};

// Frame (magic + length + payload) encoders; append to `out`.
void EncodeRequest(const Request& request, std::vector<uint8_t>* out);
void EncodeResponse(const Response& response, std::vector<uint8_t>* out);

// Decode one frame payload (the bytes after the 8-byte header). Corruption
// and range violations come back as kCorruption / kInvalidArgument — a
// serving process must never abort on untrusted bytes.
StatusOr<Request> DecodeRequest(const uint8_t* payload, size_t size);
StatusOr<Response> DecodeResponse(const uint8_t* payload, size_t size);

// Validates a frame header; on success sets `payload_len`.
Status CheckFrameHeader(const uint8_t header[kFrameHeaderBytes],
                        uint32_t* payload_len);

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_PROTOCOL_H_
