// Degraded query evaluators: category-only answers for overload.
//
// The signature index's expensive phases are guided backtracking and exact
// sorting; its cheap phase is reading one row and looking at categories. The
// paper's own observation — categories alone confirm or prune most objects —
// is exactly what a server wants under overload: an answer whose cost is one
// row read, no page-chasing, no exact refinement.
//
// These evaluators mirror the exact queries (query/knn_query.h etc.) but
// stop at the category level:
//   * kNN: objects of the nearest categories, boundary bucket truncated
//     arbitrarily, distances estimated as the category midpoint;
//   * range: category-confirmed objects plus straddling objects decided by
//     their midpoint (no backtracking);
//   * join: triangle bounds on category ranges only, straddling pairs
//     decided by midpoints (no exact evaluations).
//
// Answers are approximate in a bounded, explainable way (each object's true
// distance lies in its category range), and responses carrying them are
// tagged Degradation::kOverload so clients can tell. Decode-fault
// degradation is different machinery: the index itself falls back to bounded
// Dijkstra (SignatureIndex::FallbackRow) and stays exact; the server only
// tags it (Degradation::kDecodeFault).
#ifndef DSIG_SERVE_DEGRADE_H_
#define DSIG_SERVE_DEGRADE_H_

#include <cstdint>
#include <vector>

#include "core/signature_index.h"
#include "query/join_query.h"
#include "query/range_query.h"

namespace dsig {
namespace serve {

struct DegradedKnnResult {
  // k objects in non-decreasing category order (arbitrary order inside the
  // boundary category).
  std::vector<uint32_t> objects;
  // Midpoint-of-category distance estimates, aligned with `objects`.
  std::vector<Weight> approx_distances;
};

DegradedKnnResult DegradedKnnQuery(const SignatureIndex& index, NodeId n,
                                   size_t k);

// `refined` counts straddling objects decided by midpoint (the answer's
// uncertainty measure).
RangeQueryResult DegradedRangeQuery(const SignatureIndex& index, NodeId n,
                                    Weight epsilon);

// `exact_evaluations` stays 0 by construction; straddling pairs are decided
// by midpoint sums.
JoinResult DegradedEpsilonJoin(const SignatureIndex& left,
                               const SignatureIndex& right, NodeId n,
                               Weight epsilon);

// The midpoint estimate shared by the evaluators: middle of the category's
// range, with the open-ended last category capped at lb * growth.
Weight CategoryMidpoint(const CategoryPartition& partition, int category);

}  // namespace serve
}  // namespace dsig

#endif  // DSIG_SERVE_DEGRADE_H_
