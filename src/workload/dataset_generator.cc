#include "workload/dataset_generator.h"

#include <algorithm>
#include <deque>

#include "util/random.h"

namespace dsig {
namespace {

size_t DatasetCardinality(const RoadNetwork& graph, double density) {
  DSIG_CHECK_GT(density, 0);
  DSIG_CHECK_LE(density, 1);
  const auto count = static_cast<size_t>(
      density * static_cast<double>(graph.num_nodes()) + 0.5);
  return std::max<size_t>(1, std::min(count, graph.num_nodes()));
}

}  // namespace

std::vector<NodeId> UniformDataset(const RoadNetwork& graph, double density,
                                   uint64_t seed) {
  const size_t count = DatasetCardinality(graph, density);
  Random rng(seed);
  std::vector<bool> chosen(graph.num_nodes(), false);
  std::vector<NodeId> objects;
  objects.reserve(count);
  while (objects.size() < count) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
    if (chosen[n]) continue;
    chosen[n] = true;
    objects.push_back(n);
  }
  std::sort(objects.begin(), objects.end());
  return objects;
}

std::vector<NodeId> ClusteredDataset(const RoadNetwork& graph, double density,
                                     size_t num_clusters, uint64_t seed) {
  const size_t count = DatasetCardinality(graph, density);
  DSIG_CHECK_GE(num_clusters, 1u);
  Random rng(seed);
  std::vector<bool> chosen(graph.num_nodes(), false);
  std::vector<NodeId> objects;
  objects.reserve(count);
  const size_t per_cluster = (count + num_clusters - 1) / num_clusters;
  while (objects.size() < count) {
    // Grow one cluster by BFS from a random unchosen seed.
    NodeId seed_node =
        static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
    if (chosen[seed_node]) continue;
    std::deque<NodeId> queue = {seed_node};
    std::vector<bool> visited(graph.num_nodes(), false);
    visited[seed_node] = true;
    size_t placed = 0;
    while (!queue.empty() && placed < per_cluster && objects.size() < count) {
      const NodeId n = queue.front();
      queue.pop_front();
      if (!chosen[n]) {
        chosen[n] = true;
        objects.push_back(n);
        ++placed;
      }
      for (const AdjacencyEntry& entry : graph.adjacency(n)) {
        if (entry.removed || visited[entry.to]) continue;
        visited[entry.to] = true;
        queue.push_back(entry.to);
      }
    }
  }
  std::sort(objects.begin(), objects.end());
  return objects;
}

}  // namespace dsig
