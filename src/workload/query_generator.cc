#include "workload/query_generator.h"

#include "util/random.h"

namespace dsig {

std::vector<NodeId> RandomQueryNodes(const RoadNetwork& graph, size_t count,
                                     uint64_t seed) {
  DSIG_CHECK_GT(graph.num_nodes(), 0u);
  Random rng(seed);
  std::vector<NodeId> nodes;
  nodes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    nodes.push_back(static_cast<NodeId>(rng.NextUint64(graph.num_nodes())));
  }
  return nodes;
}

}  // namespace dsig
