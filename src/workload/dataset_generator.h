// Dataset (object placement) generators for the evaluation (paper §6.1).
//
// The paper evaluates uniformly distributed datasets with density
// p ∈ {0.0005, 0.001, 0.01, 0.05} (p = objects / nodes) plus one non-uniform
// dataset of 100 clusters at p = 0.01, denoted 0.01(nu).
#ifndef DSIG_WORKLOAD_DATASET_GENERATOR_H_
#define DSIG_WORKLOAD_DATASET_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace dsig {

// `density` * num_nodes distinct nodes, uniformly sampled (at least 1).
std::vector<NodeId> UniformDataset(const RoadNetwork& graph, double density,
                                   uint64_t seed);

// Same cardinality as UniformDataset but concentrated around `num_clusters`
// randomly chosen seed nodes: each cluster is filled by BFS from its seed,
// mimicking real POI clumping (shops along main streets).
std::vector<NodeId> ClusteredDataset(const RoadNetwork& graph, double density,
                                     size_t num_clusters, uint64_t seed);

}  // namespace dsig

#endif  // DSIG_WORKLOAD_DATASET_GENERATOR_H_
