// Query workload generators (paper §6.2: 500-1000 random queries per
// workload).
#ifndef DSIG_WORKLOAD_QUERY_GENERATOR_H_
#define DSIG_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace dsig {

// `count` query nodes, uniformly sampled with replacement.
std::vector<NodeId> RandomQueryNodes(const RoadNetwork& graph, size_t count,
                                     uint64_t seed);

}  // namespace dsig

#endif  // DSIG_WORKLOAD_QUERY_GENERATOR_H_
