// Incremental Network Expansion (INE) baseline (paper §2; Papadias et al.,
// VLDB 2003).
//
// The index-free competitor: queries expand the network from the query node
// with online Dijkstra, reporting objects as their nodes are settled. Every
// settled node charges its adjacency page — the cost profile that makes INE
// great for short ranges and hopeless for long ones.
#ifndef DSIG_BASELINES_INE_H_
#define DSIG_BASELINES_INE_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"
#include "storage/network_store.h"

namespace dsig {

struct IneResult {
  // Objects found, with exact distances, in ascending distance order.
  std::vector<std::pair<Weight, uint32_t>> objects;
  size_t nodes_expanded = 0;
};

class IneSearch {
 public:
  // `store` may be null (no page charging). Referents must outlive this.
  IneSearch(const RoadNetwork* graph, std::vector<NodeId> objects,
            const NetworkStore* store);

  // All objects within `epsilon` of n.
  IneResult Range(NodeId n, Weight epsilon) const;

  // The k nearest objects to n.
  IneResult Knn(NodeId n, size_t k) const;

 private:
  // Expands until `epsilon` is exceeded or `k` objects are found (use
  // kInfiniteWeight / SIZE_MAX to disable either bound).
  IneResult Expand(NodeId n, Weight epsilon, size_t k) const;

  const RoadNetwork* graph_;
  std::vector<NodeId> objects_;
  std::vector<ObjectId> object_of_node_;
  const NetworkStore* store_;
};

}  // namespace dsig

#endif  // DSIG_BASELINES_INE_H_
