#include "baselines/ine.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/logging.h"

namespace dsig {

IneSearch::IneSearch(const RoadNetwork* graph, std::vector<NodeId> objects,
                     const NetworkStore* store)
    : graph_(graph), objects_(std::move(objects)), store_(store) {
  DSIG_CHECK(graph_ != nullptr);
  std::sort(objects_.begin(), objects_.end());
  object_of_node_.assign(graph_->num_nodes(), kInvalidObject);
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    object_of_node_[objects_[i]] = i;
  }
}

IneResult IneSearch::Expand(NodeId n, Weight epsilon, size_t k) const {
  DSIG_CHECK_LT(n, graph_->num_nodes());
  IneResult result;
  std::vector<Weight> dist(graph_->num_nodes(), kInfiniteWeight);
  std::vector<bool> settled(graph_->num_nodes(), false);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[n] = 0;
  heap.push({0, n});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u] || d > dist[u]) continue;
    if (d > epsilon) break;
    settled[u] = true;
    ++result.nodes_expanded;
    if (store_ != nullptr) store_->TouchNode(u);
    if (object_of_node_[u] != kInvalidObject) {
      result.objects.push_back({d, object_of_node_[u]});
      if (result.objects.size() >= k) break;
    }
    for (const AdjacencyEntry& entry : graph_->adjacency(u)) {
      if (entry.removed) continue;
      const Weight nd = d + entry.weight;
      if (nd < dist[entry.to]) {
        dist[entry.to] = nd;
        heap.push({nd, entry.to});
      }
    }
  }
  return result;
}

IneResult IneSearch::Range(NodeId n, Weight epsilon) const {
  return Expand(n, epsilon, objects_.size() + 1);
}

IneResult IneSearch::Knn(NodeId n, size_t k) const {
  return Expand(n, kInfiniteWeight, std::min(k, objects_.size()));
}

}  // namespace dsig
