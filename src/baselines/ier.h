// Incremental Euclidean Restriction (IER) baseline (paper §2; Papadias et
// al., VLDB 2003).
//
// IER processes queries in Euclidean space first — candidates come out of an
// R-tree over object positions in Euclidean-distance order — and refines
// each candidate's network distance, stopping once the next Euclidean lower
// bound exceeds the k-th best network distance found. It is only correct
// when scaled Euclidean distance lower-bounds network distance; the paper
// dismisses IER for weight models where no such bound exists (e.g., travel
// times). Our generators produce metric-ish weights, so the largest
// admissible scale (graph/astar.h) yields a valid, if loose, bound — making
// IER a legitimate fourth competitor and a demonstration of exactly the
// looseness the paper criticizes.
#ifndef DSIG_BASELINES_IER_H_
#define DSIG_BASELINES_IER_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"
#include "spatial/rtree.h"
#include "storage/network_store.h"

namespace dsig {

struct IerResult {
  // Objects found, with exact network distances, ascending.
  std::vector<std::pair<Weight, uint32_t>> objects;
  // Candidates whose network distance was computed (the refinement cost).
  size_t network_evaluations = 0;
};

class IerSearch {
 public:
  // `store` may be null (no page charging); referents must outlive this.
  // Dies (CHECK) if no positive admissible Euclidean scale exists.
  IerSearch(const RoadNetwork* graph, std::vector<NodeId> objects,
            const NetworkStore* store);

  // k nearest objects by network distance.
  IerResult Knn(NodeId q, size_t k) const;

  // Objects within network distance epsilon.
  IerResult Range(NodeId q, Weight epsilon) const;

  double euclidean_scale() const { return scale_; }

 private:
  // Euclidean lower bound on the network distance q -> objects_[o].
  Weight LowerBound(NodeId q, uint32_t o) const;

  // Exact network distance via A* under the admissible heuristic, charging
  // adjacency pages for expanded nodes.
  Weight NetworkDistance(NodeId q, uint32_t o) const;

  const RoadNetwork* graph_;
  std::vector<NodeId> objects_;
  const NetworkStore* store_;
  double scale_;
  RTree rtree_;  // object positions; leaf values are object indexes
};

}  // namespace dsig

#endif  // DSIG_BASELINES_IER_H_
