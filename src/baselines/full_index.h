// Full-indexing baseline (paper §6): for every node, the exact network
// distance to every object, stored in dedicated pages.
//
// The strongest possible query-time competitor — a node's row answers any
// distance question directly — at the price of 4 bytes per (node, object)
// pair and no update locality. The evaluation uses it as the query-time
// lower bound the signature index is compared against.
#ifndef DSIG_BASELINES_FULL_INDEX_H_
#define DSIG_BASELINES_FULL_INDEX_H_

#include <memory>
#include <vector>

#include "graph/road_network.h"
#include "storage/network_store.h"
#include "storage/pager.h"

namespace dsig {

class FullIndex {
 public:
  // One Dijkstra per object, like signature construction but with no
  // encoding work afterwards.
  static std::unique_ptr<FullIndex> Build(const RoadNetwork& graph,
                                          std::vector<NodeId> objects);

  FullIndex(const FullIndex&) = delete;
  FullIndex& operator=(const FullIndex&) = delete;

  size_t num_objects() const { return objects_.size(); }
  const std::vector<NodeId>& objects() const { return objects_; }

  // Lays rows out in `order`, charging accesses to `buffer`.
  void AttachStorage(BufferManager* buffer, const std::vector<NodeId>& order);

  // 4 bytes per (node, object) pair — the paper's "an integer" per entry.
  uint64_t IndexBytes() const;

  // Exact distance; charges the single page holding the component.
  Weight Distance(NodeId n, uint32_t object_index) const;

  // Objects with d(n, o) <= epsilon; charges the whole row.
  std::vector<uint32_t> RangeQuery(NodeId n, Weight epsilon) const;

  // k nearest objects with exact distances, ascending; charges the row.
  std::vector<std::pair<Weight, uint32_t>> KnnQuery(NodeId n,
                                                    size_t k) const;

 private:
  FullIndex(const RoadNetwork* graph, std::vector<NodeId> objects);

  size_t Slot(NodeId n, uint32_t object_index) const {
    return static_cast<size_t>(n) * objects_.size() + object_index;
  }

  const RoadNetwork* graph_;
  std::vector<NodeId> objects_;
  std::vector<float> dist_;  // row-major [node][object], 4-byte entries
  PagedStore store_;
};

}  // namespace dsig

#endif  // DSIG_BASELINES_FULL_INDEX_H_
