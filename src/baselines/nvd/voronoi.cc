#include "baselines/nvd/voronoi.h"

#include <algorithm>
#include <utility>

#include "graph/dijkstra.h"

namespace dsig {

VoronoiDiagram BuildVoronoiDiagram(const RoadNetwork& graph,
                                   std::vector<NodeId> objects) {
  DSIG_CHECK(!objects.empty());
  std::sort(objects.begin(), objects.end());
  VoronoiDiagram nvd;
  nvd.generators = std::move(objects);

  const ShortestPathTree tree =
      RunDijkstraMultiSource(graph, nvd.generators);
  // Map owner node ids back to object indexes.
  std::vector<uint32_t> object_of_node(graph.num_nodes(), kInvalidObject);
  for (uint32_t i = 0; i < nvd.generators.size(); ++i) {
    object_of_node[nvd.generators[i]] = i;
  }
  nvd.cell_of_node.resize(graph.num_nodes());
  nvd.dist_to_generator.resize(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    DSIG_CHECK_NE(tree.owner[n], kInvalidNode)
        << "NVD requires a connected network";
    nvd.cell_of_node[n] = object_of_node[tree.owner[n]];
    nvd.dist_to_generator[n] = tree.dist[n];
  }

  const size_t cells = nvd.generators.size();
  nvd.borders.resize(cells);
  nvd.adjacent_cells.resize(cells);
  nvd.cell_bounds.resize(cells);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    nvd.cell_bounds[nvd.cell_of_node[n]].ExpandToInclude(graph.position(n));
  }

  std::vector<bool> is_border(graph.num_nodes(), false);
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (graph.edge_removed(e)) continue;
    const auto [u, v] = graph.edge_endpoints(e);
    const uint32_t cu = nvd.cell_of_node[u];
    const uint32_t cv = nvd.cell_of_node[v];
    if (cu == cv) continue;
    is_border[u] = is_border[v] = true;
    nvd.adjacent_cells[cu].push_back(cv);
    nvd.adjacent_cells[cv].push_back(cu);
  }
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (is_border[n]) nvd.borders[nvd.cell_of_node[n]].push_back(n);
  }
  for (auto& adjacent : nvd.adjacent_cells) {
    std::sort(adjacent.begin(), adjacent.end());
    adjacent.erase(std::unique(adjacent.begin(), adjacent.end()),
                   adjacent.end());
  }
  return nvd;
}

}  // namespace dsig
