#include "baselines/nvd/border_graph.h"

#include <algorithm>
#include <queue>

namespace dsig {
namespace {

const std::vector<std::pair<NodeId, Weight>> kNoCrossEdges;

}  // namespace

BorderGraph::BorderGraph(const RoadNetwork& graph, const VoronoiDiagram* nvd)
    : graph_(&graph), nvd_(nvd) {
  DSIG_CHECK(nvd_ != nullptr);
  const size_t v = graph.num_nodes();
  const size_t cells = nvd_->num_cells();

  border_slot_.assign(v, kInvalidNode);
  for (uint32_t c = 0; c < cells; ++c) {
    for (uint32_t s = 0; s < nvd_->borders[c].size(); ++s) {
      border_slot_[nvd_->borders[c][s]] = s;
    }
  }

  b2b_.resize(cells);
  gen2b_.resize(cells);
  inner2b_.resize(v);
  for (NodeId n = 0; n < v; ++n) {
    inner2b_[n].assign(nvd_->borders[nvd_->cell_of_node[n]].size(),
                       kInfiniteWeight);
  }

  // Per-border Dijkstra restricted to the cell; fills the whole
  // inner-to-border table as a by-product.
  std::vector<Weight> dist(v, kInfiniteWeight);
  std::vector<bool> settled(v, false);
  for (uint32_t c = 0; c < cells; ++c) {
    const std::vector<NodeId>& borders = nvd_->borders[c];
    const size_t nb = borders.size();
    b2b_[c].assign(nb * nb, kInfiniteWeight);
    gen2b_[c].assign(nb, kInfiniteWeight);
    for (uint32_t s = 0; s < nb; ++s) {
      // Restricted Dijkstra from border s within cell c.
      using Entry = std::pair<Weight, NodeId>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
      dist[borders[s]] = 0;
      heap.push({0, borders[s]});
      std::vector<NodeId> touched = {borders[s]};
      while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (settled[u] || d > dist[u]) continue;
        settled[u] = true;
        inner2b_[u][s] = d;
        for (const AdjacencyEntry& entry : graph.adjacency(u)) {
          if (entry.removed) continue;
          if (nvd_->cell_of_node[entry.to] != c) continue;  // stay inside
          const Weight nd = d + entry.weight;
          if (nd < dist[entry.to]) {
            if (dist[entry.to] == kInfiniteWeight) touched.push_back(entry.to);
            dist[entry.to] = nd;
            heap.push({nd, entry.to});
          }
        }
      }
      for (uint32_t s2 = 0; s2 < nb; ++s2) {
        b2b_[c][static_cast<size_t>(s) * nb + s2] = inner2b_[borders[s2]][s];
      }
      gen2b_[c][s] = inner2b_[nvd_->generators[c]][s];
      for (const NodeId t : touched) {
        dist[t] = kInfiniteWeight;
        settled[t] = false;
      }
    }
  }

  // Cross-cell edges between border nodes.
  cross_edges_.resize(v);
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (graph.edge_removed(e)) continue;
    const auto [a, b] = graph.edge_endpoints(e);
    if (nvd_->cell_of_node[a] == nvd_->cell_of_node[b]) continue;
    const Weight w = graph.edge_weight(e);
    cross_edges_[a].push_back({b, w});
    cross_edges_[b].push_back({a, w});
  }
}

Weight BorderGraph::BorderToBorder(uint32_t cell, NodeId b1, NodeId b2) const {
  const uint32_t s1 = border_slot_[b1];
  const uint32_t s2 = border_slot_[b2];
  DSIG_CHECK_NE(s1, kInvalidNode);
  DSIG_CHECK_NE(s2, kInvalidNode);
  const size_t nb = nvd_->borders[cell].size();
  return b2b_[cell][static_cast<size_t>(s1) * nb + s2];
}

Weight BorderGraph::GeneratorToBorder(uint32_t cell, NodeId border) const {
  const uint32_t s = border_slot_[border];
  DSIG_CHECK_NE(s, kInvalidNode);
  return gen2b_[cell][s];
}

Weight BorderGraph::InnerToBorder(NodeId n, NodeId border) const {
  const uint32_t s = border_slot_[border];
  DSIG_CHECK_NE(s, kInvalidNode);
  return inner2b_[n][s];
}

const std::vector<std::pair<NodeId, Weight>>& BorderGraph::CrossEdges(
    NodeId b) const {
  if (b >= cross_edges_.size()) return kNoCrossEdges;
  return cross_edges_[b];
}

uint64_t BorderGraph::BorderTableBytes() const {
  uint64_t entries = 0;
  for (uint32_t c = 0; c < nvd_->num_cells(); ++c) {
    entries += b2b_[c].size() + gen2b_[c].size();
  }
  return entries * 4;
}

uint64_t BorderGraph::InnerTableBytes() const {
  uint64_t entries = 0;
  for (const auto& row : inner2b_) entries += row.size();
  return entries * 4;
}

void BorderGraph::AttachStorage(BufferManager* buffer) {
  const size_t cells = nvd_->num_cells();
  std::vector<uint64_t> cell_bits(cells);
  std::vector<uint32_t> cell_order(cells);
  for (uint32_t c = 0; c < cells; ++c) {
    cell_bits[c] = 32 * (b2b_[c].size() + gen2b_[c].size());
    cell_order[c] = c;
  }
  cell_store_ = PagedStore(PageLayout(cell_bits, cell_order), buffer);

  const size_t v = inner2b_.size();
  std::vector<uint64_t> inner_bits(v);
  std::vector<uint32_t> inner_order(v);
  for (uint32_t n = 0; n < v; ++n) {
    inner_bits[n] = 32 * inner2b_[n].size();
    inner_order[n] = n;
  }
  inner_store_ = PagedStore(PageLayout(inner_bits, inner_order), buffer);
}

}  // namespace dsig
