// VN³ — Voronoi-based Network Nearest Neighbour index (paper §2 & §6
// baseline; Kolahdouzan & Shahabi, VLDB 2004).
//
// Combines the Network Voronoi Diagram, its precomputed border/inner
// distance tables, and an R-tree over NVP bounding boxes. The first NN is a
// point-location lookup; farther neighbours are found by Dijkstra over the
// *border graph* (expanding Voronoi cells in distance order), which is the
// VN³ behaviour whose cost grows sharply with k — the shape Fig 6.6
// reproduces. Range queries follow the paper's §6 design: check the query's
// NVP, then expand through adjacent NVPs while the distance allows.
#ifndef DSIG_BASELINES_NVD_VN3_H_
#define DSIG_BASELINES_NVD_VN3_H_

#include <memory>
#include <vector>

#include "baselines/nvd/border_graph.h"
#include "baselines/nvd/voronoi.h"
#include "spatial/rtree.h"
#include "storage/buffer_manager.h"

namespace dsig {

class Vn3Index {
 public:
  // Builds NVD + border tables + NVP R-tree. The graph must stay alive and
  // unchanged for the index lifetime.
  Vn3Index(const RoadNetwork& graph, std::vector<NodeId> objects);

  Vn3Index(const Vn3Index&) = delete;
  Vn3Index& operator=(const Vn3Index&) = delete;

  const VoronoiDiagram& nvd() const { return nvd_; }
  const BorderGraph& border_graph() const { return *border_graph_; }

  void AttachStorage(BufferManager* buffer);

  // NVP R-tree + border/inner distance tables + node->cell map.
  uint64_t IndexBytes() const;

  // k nearest objects with exact distances, ascending.
  std::vector<std::pair<Weight, uint32_t>> Knn(NodeId q, size_t k) const;

  // Objects within `epsilon`, with exact distances, ascending.
  std::vector<std::pair<Weight, uint32_t>> Range(NodeId q,
                                                 Weight epsilon) const;

 private:
  // Shared engine: settles generators in distance order until k results or
  // the frontier passes epsilon.
  std::vector<std::pair<Weight, uint32_t>> Search(NodeId q, Weight epsilon,
                                                  size_t k) const;

  // Point location of the query via the NVP R-tree (charged), resolved
  // against the exact cell map.
  uint32_t LocateCell(NodeId q) const;

  const RoadNetwork* graph_;
  VoronoiDiagram nvd_;
  std::unique_ptr<BorderGraph> border_graph_;
  RTree rtree_;
  BufferManager* buffer_ = nullptr;
  FileId rtree_file_ = 0;
};

}  // namespace dsig

#endif  // DSIG_BASELINES_NVD_VN3_H_
