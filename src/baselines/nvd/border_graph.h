// Precomputed NVD distance tables and the border graph (VN³'s machinery).
//
// VN³ answers queries on a reduced graph whose vertices are cell border
// nodes and generators:
//   * within each cell: border-to-border and generator-to-border distances,
//     computed by per-border Dijkstras restricted to the cell (a maximal
//     within-cell segment of any shortest path stays inside the cell, so
//     restricted distances compose exactly);
//   * across cells: the original road edges joining borders of different
//     cells;
//   * per inner node: distances to all borders of its cell, which embed an
//     arbitrary query node into the border graph.
//
// The inner-to-border table is what explodes for sparse datasets (few huge
// cells with many borders) — the effect behind NVD's curve in Fig 6.4.
#ifndef DSIG_BASELINES_NVD_BORDER_GRAPH_H_
#define DSIG_BASELINES_NVD_BORDER_GRAPH_H_

#include <cstdint>
#include <vector>

#include "baselines/nvd/voronoi.h"
#include "storage/pager.h"

namespace dsig {

class BorderGraph {
 public:
  // Runs the restricted Dijkstras. `nvd` must outlive the border graph.
  BorderGraph(const RoadNetwork& graph, const VoronoiDiagram* nvd);

  BorderGraph(const BorderGraph&) = delete;
  BorderGraph& operator=(const BorderGraph&) = delete;

  const VoronoiDiagram& nvd() const { return *nvd_; }

  // Within-cell border-to-border distance; b1 and b2 must be borders of
  // `cell`. kInfiniteWeight when the cell interior does not connect them.
  Weight BorderToBorder(uint32_t cell, NodeId b1, NodeId b2) const;

  // Within-cell generator-to-border distance.
  Weight GeneratorToBorder(uint32_t cell, NodeId border) const;

  // Within-cell distance from any node to a border of its own cell.
  Weight InnerToBorder(NodeId n, NodeId border) const;

  // Cross-cell road edges incident to border node `b`:
  // (other border, weight).
  const std::vector<std::pair<NodeId, Weight>>& CrossEdges(NodeId b) const;

  // Dense per-cell index of a border node, or kInvalidNode if `n` is not a
  // border of its cell.
  uint32_t BorderSlot(NodeId n) const { return border_slot_[n]; }

  // --- storage & accounting ------------------------------------------------

  // Total table bytes (border-to-border + generator-to-border +
  // inner-to-border), 4 bytes per distance — the Bor-Bor and OPC storage of
  // Fig 6.4(a).
  uint64_t BorderTableBytes() const;
  uint64_t InnerTableBytes() const;

  // Lays out per-cell tables and per-node inner rows into pages.
  void AttachStorage(BufferManager* buffer);

  // Charges the whole per-cell table (first consultation of a cell during a
  // query) / the query node's inner row.
  void TouchCellTables(uint32_t cell) const { cell_store_.TouchRecord(cell); }
  void TouchInnerRow(NodeId n) const { inner_store_.TouchRecord(n); }

 private:
  const RoadNetwork* graph_;
  const VoronoiDiagram* nvd_;
  // border_slot_[n] = index of n within its cell's border list.
  std::vector<uint32_t> border_slot_;
  // Per cell: flattened |b| x |b| border-to-border matrix.
  std::vector<std::vector<Weight>> b2b_;
  // Per cell: generator-to-border distances, aligned with the border list.
  std::vector<std::vector<Weight>> gen2b_;
  // Per node: distances to the borders of its cell, aligned with the list.
  std::vector<std::vector<Weight>> inner2b_;
  // Per node: cross-cell edges (empty for non-borders).
  std::vector<std::vector<std::pair<NodeId, Weight>>> cross_edges_;

  PagedStore cell_store_;
  PagedStore inner_store_;
};

}  // namespace dsig

#endif  // DSIG_BASELINES_NVD_BORDER_GRAPH_H_
