// Network Voronoi Diagram (NVD) construction (paper §2; Kolahdouzan &
// Shahabi, VLDB 2004).
//
// A single multi-source Dijkstra grown from every object simultaneously
// assigns each node to its nearest object — its Voronoi cell generator —
// and yields d(node, generator) for free. Border nodes (nodes with a
// neighbour in a different cell) and cell adjacency fall out of one edge
// sweep; each cell's bounding rectangle approximates its Network Voronoi
// Polygon for the R-tree.
#ifndef DSIG_BASELINES_NVD_VORONOI_H_
#define DSIG_BASELINES_NVD_VORONOI_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"
#include "spatial/rect.h"

namespace dsig {

struct VoronoiDiagram {
  // Object nodes, indexed by object index ("generators" of the cells).
  std::vector<NodeId> generators;
  // cell_of_node[n] = object index owning node n.
  std::vector<uint32_t> cell_of_node;
  // d(n, generator of its cell).
  std::vector<Weight> dist_to_generator;
  // Border nodes of each cell (nodes adjacent to a different cell),
  // ascending node id.
  std::vector<std::vector<NodeId>> borders;
  // Adjacent cells of each cell, ascending, deduplicated.
  std::vector<std::vector<uint32_t>> adjacent_cells;
  // Bounding rectangle of each cell's nodes (the NVP approximation).
  std::vector<Rect> cell_bounds;

  size_t num_cells() const { return generators.size(); }
};

// `objects` must be distinct node ids on a connected network.
VoronoiDiagram BuildVoronoiDiagram(const RoadNetwork& graph,
                                   std::vector<NodeId> objects);

}  // namespace dsig

#endif  // DSIG_BASELINES_NVD_VORONOI_H_
