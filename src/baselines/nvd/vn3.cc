#include "baselines/nvd/vn3.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace dsig {

Vn3Index::Vn3Index(const RoadNetwork& graph, std::vector<NodeId> objects)
    : graph_(&graph), nvd_(BuildVoronoiDiagram(graph, std::move(objects))) {
  border_graph_ = std::make_unique<BorderGraph>(graph, &nvd_);
  for (uint32_t c = 0; c < nvd_.num_cells(); ++c) {
    rtree_.Insert(nvd_.cell_bounds[c], c);
  }
}

void Vn3Index::AttachStorage(BufferManager* buffer) {
  buffer_ = buffer;
  border_graph_->AttachStorage(buffer);
  if (buffer != nullptr) rtree_file_ = buffer->RegisterFile();
}

uint64_t Vn3Index::IndexBytes() const {
  return rtree_.SizeBytes() + border_graph_->BorderTableBytes() +
         border_graph_->InnerTableBytes() +
         4 * static_cast<uint64_t>(graph_->num_nodes());
}

uint32_t Vn3Index::LocateCell(NodeId q) const {
  const RTreeSearchResult located = rtree_.Locate(graph_->position(q));
  if (buffer_ != nullptr) {
    // One page per R-tree node visited during point location.
    for (const uint32_t node : located.visited_nodes) {
      buffer_->Access(rtree_file_, node);
    }
  }
  // Bounding boxes overlap, so the R-tree yields candidates; the exact cell
  // map (part of the NVD's stored data) resolves them.
  return nvd_.cell_of_node[q];
}

std::vector<std::pair<Weight, uint32_t>> Vn3Index::Search(NodeId q,
                                                          Weight epsilon,
                                                          size_t k) const {
  std::vector<std::pair<Weight, uint32_t>> results;
  if (k == 0) return results;
  k = std::min(k, nvd_.num_cells());

  const uint32_t home_cell = LocateCell(q);
  border_graph_->TouchInnerRow(q);

  // Dijkstra over the border graph. Vertices are node ids (borders and
  // generators); dist is sparse via a hash-free dense array (node count is
  // laptop-scale throughout this repo).
  const size_t v = graph_->num_nodes();
  std::vector<Weight> dist(v, kInfiniteWeight);
  std::vector<bool> settled(v, false);
  std::vector<bool> cell_charged(nvd_.num_cells(), false);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  const auto charge_cell = [&](uint32_t cell) {
    if (cell_charged[cell]) return;
    cell_charged[cell] = true;
    border_graph_->TouchCellTables(cell);
  };

  const auto relax = [&](NodeId to, Weight d) {
    if (d < dist[to]) {
      dist[to] = d;
      heap.push({d, to});
    }
  };

  // Seed: the home generator (d known from the NVD) and the home cell's
  // borders (inner-to-border row of q).
  charge_cell(home_cell);
  relax(nvd_.generators[home_cell], nvd_.dist_to_generator[q]);
  for (const NodeId b : nvd_.borders[home_cell]) {
    const Weight d = border_graph_->InnerToBorder(q, b);
    if (d < kInfiniteWeight) relax(b, d);
  }

  std::vector<bool> reported(nvd_.num_cells(), false);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u] || d > dist[u]) continue;
    if (d > epsilon) break;
    settled[u] = true;

    const uint32_t cell = nvd_.cell_of_node[u];
    if (nvd_.generators[cell] == u && !reported[cell]) {
      reported[cell] = true;
      results.push_back({d, cell});
      if (results.size() >= k) break;
    }

    // Within-cell moves (border tables of u's cell).
    const uint32_t slot = border_graph_->BorderSlot(u);
    if (slot != kInvalidNode) {
      charge_cell(cell);
      for (const NodeId b2 : nvd_.borders[cell]) {
        const Weight w = border_graph_->BorderToBorder(cell, u, b2);
        if (w < kInfiniteWeight) relax(b2, d + w);
      }
      const Weight to_gen = border_graph_->GeneratorToBorder(cell, u);
      if (to_gen < kInfiniteWeight) relax(nvd_.generators[cell], d + to_gen);
      // Cross-cell road edges.
      for (const auto& [b2, w] : border_graph_->CrossEdges(u)) {
        relax(b2, d + w);
      }
    } else if (nvd_.generators[cell] == u) {
      // A settled generator also relaxes outward to its cell's borders —
      // shortest paths may pass through object nodes.
      charge_cell(cell);
      for (const NodeId b2 : nvd_.borders[cell]) {
        const Weight w = border_graph_->GeneratorToBorder(cell, b2);
        if (w < kInfiniteWeight) relax(b2, d + w);
      }
    }
  }
  std::sort(results.begin(), results.end());
  return results;
}

std::vector<std::pair<Weight, uint32_t>> Vn3Index::Knn(NodeId q,
                                                       size_t k) const {
  return Search(q, kInfiniteWeight, k);
}

std::vector<std::pair<Weight, uint32_t>> Vn3Index::Range(
    NodeId q, Weight epsilon) const {
  return Search(q, epsilon, nvd_.num_cells());
}

}  // namespace dsig
