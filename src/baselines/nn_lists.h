// NN-lists + UNICONS-style continuous kNN baseline (paper §2; Cho & Chung,
// VLDB 2005).
//
// UNICONS accelerates kNN and continuous kNN with a solution-based index:
// precomputed NN lists for *condensed nodes* (nodes of large degree). A kNN
// query at an arbitrary node expands to the nearest condensed nodes and
// merges their lists; a CNN query over a path splits it into sub-paths at
// intersection (condensed) nodes, unions the kNN sets of the sub-path
// endpoints with the objects on the sub-path, and scans for split points.
//
// The paper's introduction calls out this index's key limitation — NN lists
// store no path information, so they cannot even answer "kNN with paths" —
// which the signature index fixes. We implement the baseline to make the
// comparison concrete: exact kNN/CNN results, with the precomputation and
// query costs of the solution-based design.
#ifndef DSIG_BASELINES_NN_LISTS_H_
#define DSIG_BASELINES_NN_LISTS_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace dsig {

struct NnListEntry {
  Weight distance;
  uint32_t object;
};

// Validity interval of one kNN membership set along a path (node indexes).
struct NnListCnnInterval {
  size_t first_index;
  size_t last_index;
  std::vector<uint32_t> objects;  // ascending object index
};

class NnListIndex {
 public:
  // Precomputes `list_depth`-NN lists for every node whose degree is at
  // least `condensed_degree` (the "condensed nodes"), via one bounded
  // multi-visit expansion per condensed node.
  NnListIndex(const RoadNetwork* graph, std::vector<NodeId> objects,
              size_t list_depth, size_t condensed_degree);

  size_t num_condensed() const { return condensed_.size(); }
  size_t list_depth() const { return list_depth_; }

  // Precomputed-list bytes (each entry: 4-byte distance + 4-byte object id).
  uint64_t IndexBytes() const;

  // Exact kNN (k <= list_depth): served from the node's own list when the
  // node is condensed; otherwise by a Dijkstra expansion that terminates at
  // condensed nodes, merging their (distance-shifted) lists.
  std::vector<NnListEntry> Knn(NodeId q, size_t k) const;

  // UNICONS-style continuous kNN along a walk: kNN at each sub-path
  // endpoint, candidates = union of endpoint kNNs + objects on the
  // sub-path, exact per-node results from the candidate set.
  std::vector<NnListCnnInterval> ContinuousKnn(
      const std::vector<NodeId>& path, size_t k) const;

 private:
  // Full expansion fallback (also used for correctness at tiny k).
  std::vector<NnListEntry> ExpandKnn(NodeId q, size_t k) const;

  const RoadNetwork* graph_;
  std::vector<NodeId> objects_;
  std::vector<ObjectId> object_of_node_;
  size_t list_depth_;
  std::vector<NodeId> condensed_;            // condensed node ids
  std::vector<uint32_t> condensed_slot_;     // node -> slot or kInvalidNode
  std::vector<std::vector<NnListEntry>> lists_;  // per condensed slot
};

}  // namespace dsig

#endif  // DSIG_BASELINES_NN_LISTS_H_
