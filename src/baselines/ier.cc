#include "baselines/ier.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "graph/astar.h"

namespace dsig {

IerSearch::IerSearch(const RoadNetwork* graph, std::vector<NodeId> objects,
                     const NetworkStore* store)
    : graph_(graph), objects_(std::move(objects)), store_(store) {
  DSIG_CHECK(graph_ != nullptr);
  std::sort(objects_.begin(), objects_.end());
  scale_ = MaxAdmissibleEuclideanScale(*graph_);
  DSIG_CHECK_GT(scale_, 0)
      << "IER requires a Euclidean lower bound on network distance";
  for (uint32_t o = 0; o < objects_.size(); ++o) {
    rtree_.Insert(Rect::FromPoint(graph_->position(objects_[o])), o);
  }
}

Weight IerSearch::LowerBound(NodeId q, uint32_t o) const {
  const Point& a = graph_->position(q);
  const Point& b = graph_->position(objects_[o]);
  return scale_ * std::hypot(a.x - b.x, a.y - b.y);
}

Weight IerSearch::NetworkDistance(NodeId q, uint32_t o) const {
  // A* with the admissible Euclidean heuristic; every expanded node charges
  // its adjacency page (the refinement I/O the paper attributes to IER).
  const NodeId target = objects_[o];
  const Point goal = graph_->position(target);
  const double scale = scale_;
  const auto h = [this, goal, scale](NodeId n) {
    const Point& p = graph_->position(n);
    return scale * std::hypot(p.x - goal.x, p.y - goal.y);
  };
  const size_t v = graph_->num_nodes();
  std::vector<Weight> g(v, kInfiniteWeight);
  std::vector<bool> settled(v, false);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  g[q] = 0;
  heap.push({h(q), q});
  while (!heap.empty()) {
    const NodeId u = heap.top().second;
    heap.pop();
    if (settled[u]) continue;
    settled[u] = true;
    if (store_ != nullptr) store_->TouchNode(u);
    if (u == target) return g[u];
    for (const AdjacencyEntry& entry : graph_->adjacency(u)) {
      if (entry.removed || settled[entry.to]) continue;
      const Weight nd = g[u] + entry.weight;
      if (nd < g[entry.to]) {
        g[entry.to] = nd;
        heap.push({nd + h(entry.to), entry.to});
      }
    }
  }
  return kInfiniteWeight;
}

IerResult IerSearch::Knn(NodeId q, size_t k) const {
  IerResult result;
  k = std::min(k, objects_.size());
  if (k == 0) return result;
  // Candidates in ascending Euclidean-lower-bound order.
  std::vector<std::pair<Weight, uint32_t>> candidates;
  candidates.reserve(objects_.size());
  for (uint32_t o = 0; o < objects_.size(); ++o) {
    candidates.push_back({LowerBound(q, o), o});
  }
  std::sort(candidates.begin(), candidates.end());

  // Refine until the next lower bound cannot beat the current k-th best.
  std::vector<std::pair<Weight, uint32_t>> best;  // network distances
  for (const auto& [lower, o] : candidates) {
    if (best.size() >= k && lower > best.back().first) break;
    const Weight d = NetworkDistance(q, o);
    ++result.network_evaluations;
    best.push_back({d, o});
    std::sort(best.begin(), best.end());
    if (best.size() > k) best.pop_back();
  }
  result.objects = std::move(best);
  return result;
}

IerResult IerSearch::Range(NodeId q, Weight epsilon) const {
  IerResult result;
  // Euclidean pre-filter through the object R-tree: only objects inside the
  // circle of radius epsilon/scale can be network-range results.
  const Point& p = graph_->position(q);
  const double radius = epsilon / scale_;
  const Rect box{p.x - radius, p.y - radius, p.x + radius, p.y + radius};
  for (const uint32_t o : rtree_.Search(box).values) {
    if (LowerBound(q, o) > epsilon) continue;  // corner of the box
    const Weight d = NetworkDistance(q, o);
    ++result.network_evaluations;
    if (d <= epsilon) result.objects.push_back({d, o});
  }
  std::sort(result.objects.begin(), result.objects.end());
  return result;
}

}  // namespace dsig
