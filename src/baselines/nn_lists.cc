#include "baselines/nn_lists.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <queue>
#include <set>
#include <utility>

#include "util/logging.h"

namespace dsig {
namespace {

using HeapEntry = std::pair<Weight, NodeId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

size_t LiveDegree(const RoadNetwork& graph, NodeId n) {
  size_t degree = 0;
  for (const AdjacencyEntry& e : graph.adjacency(n)) {
    if (!e.removed) ++degree;
  }
  return degree;
}

}  // namespace

NnListIndex::NnListIndex(const RoadNetwork* graph, std::vector<NodeId> objects,
                         size_t list_depth, size_t condensed_degree)
    : graph_(graph), objects_(std::move(objects)), list_depth_(list_depth) {
  DSIG_CHECK(graph_ != nullptr);
  DSIG_CHECK_GE(list_depth_, 1u);
  std::sort(objects_.begin(), objects_.end());
  list_depth_ = std::min(list_depth_, objects_.size());
  object_of_node_.assign(graph_->num_nodes(), kInvalidObject);
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    object_of_node_[objects_[i]] = i;
  }

  condensed_slot_.assign(graph_->num_nodes(), kInvalidNode);
  for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
    if (LiveDegree(*graph_, n) >= condensed_degree) {
      condensed_slot_[n] = static_cast<uint32_t>(condensed_.size());
      condensed_.push_back(n);
    }
  }

  // One expansion per condensed node, stopping once its list is full — the
  // solution-based precomputation whose cost scales with the number of
  // condensed nodes.
  lists_.resize(condensed_.size());
  for (uint32_t s = 0; s < condensed_.size(); ++s) {
    lists_[s] = ExpandKnn(condensed_[s], list_depth_);
  }
}

uint64_t NnListIndex::IndexBytes() const {
  uint64_t entries = 0;
  for (const auto& list : lists_) entries += list.size();
  return entries * 8;
}

std::vector<NnListEntry> NnListIndex::ExpandKnn(NodeId q, size_t k) const {
  std::vector<NnListEntry> result;
  std::vector<Weight> dist(graph_->num_nodes(), kInfiniteWeight);
  std::vector<bool> settled(graph_->num_nodes(), false);
  MinHeap heap;
  dist[q] = 0;
  heap.push({0, q});
  while (!heap.empty() && result.size() < k) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u] || d > dist[u]) continue;
    settled[u] = true;
    if (object_of_node_[u] != kInvalidObject) {
      result.push_back({d, object_of_node_[u]});
    }
    for (const AdjacencyEntry& e : graph_->adjacency(u)) {
      if (e.removed) continue;
      if (d + e.weight < dist[e.to]) {
        dist[e.to] = d + e.weight;
        heap.push({d + e.weight, e.to});
      }
    }
  }
  return result;
}

std::vector<NnListEntry> NnListIndex::Knn(NodeId q, size_t k) const {
  k = std::min(k, objects_.size());
  DSIG_CHECK_LE(k, list_depth_) << "NN lists only answer k <= list depth";
  if (k == 0) return {};
  if (condensed_slot_[q] != kInvalidNode) {
    std::vector<NnListEntry> result = lists_[condensed_slot_[q]];
    result.resize(std::min(result.size(), k));
    return result;
  }

  // Expansion that terminates at condensed nodes: a shortest path through a
  // condensed node c only yields top-k results already on c's list (any
  // object nearer to c is nearer to q as well), so c's distance-shifted
  // list covers everything beyond it. The same object arrives via several
  // condensed nodes, so candidates are tracked per object (best offer).
  std::vector<Weight> best(objects_.size(), kInfiniteWeight);
  const auto offer = [&](Weight d, uint32_t object) {
    best[object] = std::min(best[object], d);
  };
  // k-th smallest per-object candidate so far (kInfiniteWeight if < k).
  const auto kth_best = [&]() {
    std::vector<Weight> finite;
    for (const Weight d : best) {
      if (d < kInfiniteWeight) finite.push_back(d);
    }
    if (finite.size() < k) return kInfiniteWeight;
    std::nth_element(finite.begin(),
                     finite.begin() + static_cast<long>(k) - 1,
                     finite.end());
    return finite[k - 1];
  };
  std::vector<Weight> dist(graph_->num_nodes(), kInfiniteWeight);
  std::vector<bool> settled(graph_->num_nodes(), false);
  MinHeap heap;
  dist[q] = 0;
  heap.push({0, q});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u] || d > dist[u]) continue;
    // Early exit: the k-th distinct candidate cannot be beaten by farther
    // frontiers (offers from frontier nodes are >= their settle distance).
    if (kth_best() <= d) break;
    settled[u] = true;
    if (object_of_node_[u] != kInvalidObject) {
      offer(d, object_of_node_[u]);
    }
    if (condensed_slot_[u] != kInvalidNode && u != q) {
      for (const NnListEntry& entry : lists_[condensed_slot_[u]]) {
        offer(d + entry.distance, entry.object);
      }
      continue;  // the list covers everything beyond this node
    }
    for (const AdjacencyEntry& e : graph_->adjacency(u)) {
      if (e.removed) continue;
      if (d + e.weight < dist[e.to]) {
        dist[e.to] = d + e.weight;
        heap.push({d + e.weight, e.to});
      }
    }
  }
  std::vector<NnListEntry> result;
  for (uint32_t o = 0; o < objects_.size(); ++o) {
    if (best[o] < kInfiniteWeight) result.push_back({best[o], o});
  }
  std::sort(result.begin(), result.end(),
            [](const NnListEntry& a, const NnListEntry& b) {
              return std::tie(a.distance, a.object) <
                     std::tie(b.distance, b.object);
            });
  result.resize(std::min(result.size(), k));
  return result;
}

std::vector<NnListCnnInterval> NnListIndex::ContinuousKnn(
    const std::vector<NodeId>& path, size_t k) const {
  std::vector<NnListCnnInterval> intervals;
  if (path.empty()) return intervals;
  k = std::min(k, objects_.size());
  DSIG_CHECK_LE(k, list_depth_);

  // Split at intersection nodes (live degree >= 3), per UNICONS: sub-path
  // interiors are then corridors with no branching, so every distance from
  // an interior node routes through one of the sub-path's endpoints (or
  // stays on the corridor).
  std::vector<size_t> cuts = {0};
  for (size_t i = 1; i + 1 < path.size(); ++i) {
    if (LiveDegree(*graph_, path[i]) >= 3) cuts.push_back(i);
  }
  cuts.push_back(path.size() - 1);

  std::vector<std::vector<uint32_t>> per_node_results(path.size());
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    const size_t s = cuts[c];
    const size_t e = cuts[c + 1];
    // The corridor argument needs simple sub-paths (a walk that doubles
    // back breaks the along-the-line distance accounting). Route queries —
    // shortest paths — are always simple.
    std::set<NodeId> distinct(path.begin() + static_cast<long>(s),
                              path.begin() + static_cast<long>(e) + 1);
    DSIG_CHECK_EQ(distinct.size(), e - s + 1)
        << "UNICONS CNN requires simple sub-paths";
    // Corridor prefix distances along the walk.
    std::vector<Weight> along = {0};
    for (size_t i = s; i < e; ++i) {
      const EdgeId edge = graph_->FindEdge(path[i], path[i + 1]);
      DSIG_CHECK_NE(edge, kInvalidEdge) << "path must be a walk";
      along.push_back(along.back() + graph_->edge_weight(edge));
    }

    // Candidate set: endpoint kNNs plus on-corridor objects (UNICONS).
    std::set<uint32_t> candidate_set;
    std::vector<NnListEntry> s_knn = Knn(path[s], k);
    std::vector<NnListEntry> e_knn = Knn(path[e], k);
    for (const auto& entry : s_knn) candidate_set.insert(entry.object);
    for (const auto& entry : e_knn) candidate_set.insert(entry.object);
    for (size_t i = s; i <= e; ++i) {
      if (object_of_node_[path[i]] != kInvalidObject) {
        candidate_set.insert(object_of_node_[path[i]]);
      }
    }
    const std::vector<uint32_t> candidates(candidate_set.begin(),
                                           candidate_set.end());

    // Exact endpoint distances for every candidate (bounded expansions).
    const auto endpoint_distances = [&](NodeId endpoint) {
      std::vector<Weight> d(candidates.size(), kInfiniteWeight);
      std::vector<Weight> dist(graph_->num_nodes(), kInfiniteWeight);
      std::vector<bool> settled(graph_->num_nodes(), false);
      size_t found = 0;
      MinHeap heap;
      dist[endpoint] = 0;
      heap.push({0, endpoint});
      while (!heap.empty() && found < candidates.size()) {
        const auto [dd, u] = heap.top();
        heap.pop();
        if (settled[u] || dd > dist[u]) continue;
        settled[u] = true;
        if (object_of_node_[u] != kInvalidObject) {
          const auto it = std::lower_bound(candidates.begin(),
                                           candidates.end(),
                                           object_of_node_[u]);
          if (it != candidates.end() && *it == object_of_node_[u]) {
            d[static_cast<size_t>(it - candidates.begin())] = dd;
            ++found;
          }
        }
        for (const AdjacencyEntry& edge : graph_->adjacency(u)) {
          if (edge.removed) continue;
          if (dd + edge.weight < dist[edge.to]) {
            dist[edge.to] = dd + edge.weight;
            heap.push({dd + edge.weight, edge.to});
          }
        }
      }
      return d;
    };
    const std::vector<Weight> from_s = endpoint_distances(path[s]);
    const std::vector<Weight> from_e = endpoint_distances(path[e]);

    // On-corridor object positions.
    std::vector<std::pair<Weight, uint32_t>> corridor_objects;
    for (size_t i = s; i <= e; ++i) {
      if (object_of_node_[path[i]] != kInvalidObject) {
        corridor_objects.push_back({along[i - s], object_of_node_[path[i]]});
      }
    }

    // Exact per-node result from the candidate set.
    for (size_t i = s; i <= e; ++i) {
      if (!per_node_results[i].empty()) continue;  // shared endpoint
      std::vector<std::pair<Weight, uint32_t>> scored;
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        Weight d = std::min(along[i - s] + from_s[ci],
                            (along.back() - along[i - s]) + from_e[ci]);
        for (const auto& [pos, o] : corridor_objects) {
          if (o == candidates[ci]) {
            d = std::min(d, std::abs(along[i - s] - pos));
          }
        }
        scored.push_back({d, candidates[ci]});
      }
      std::sort(scored.begin(), scored.end());
      scored.resize(std::min(scored.size(), k));
      std::vector<uint32_t> members;
      for (const auto& [d, o] : scored) members.push_back(o);
      std::sort(members.begin(), members.end());
      per_node_results[i] = std::move(members);
    }
  }

  // Merge per-node membership into validity intervals.
  for (size_t i = 0; i < path.size(); ++i) {
    if (!intervals.empty() &&
        intervals.back().objects == per_node_results[i]) {
      intervals.back().last_index = i;
    } else {
      intervals.push_back({i, i, per_node_results[i]});
    }
  }
  return intervals;
}

}  // namespace dsig
