#include "baselines/full_index.h"

#include <algorithm>
#include <utility>

#include "graph/dijkstra.h"

namespace dsig {

FullIndex::FullIndex(const RoadNetwork* graph, std::vector<NodeId> objects)
    : graph_(graph), objects_(std::move(objects)) {}

std::unique_ptr<FullIndex> FullIndex::Build(const RoadNetwork& graph,
                                            std::vector<NodeId> objects) {
  DSIG_CHECK(!objects.empty());
  std::sort(objects.begin(), objects.end());
  auto index =
      std::unique_ptr<FullIndex>(new FullIndex(&graph, std::move(objects)));
  index->dist_.assign(graph.num_nodes() * index->objects_.size(), 0);
  for (uint32_t o = 0; o < index->objects_.size(); ++o) {
    const ShortestPathTree tree = RunDijkstra(graph, index->objects_[o]);
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      DSIG_CHECK_LT(tree.dist[n], kInfiniteWeight)
          << "full index requires a connected network";
      index->dist_[index->Slot(n, o)] = static_cast<float>(tree.dist[n]);
    }
  }
  return index;
}

void FullIndex::AttachStorage(BufferManager* buffer,
                              const std::vector<NodeId>& order) {
  std::vector<uint64_t> record_bits(
      graph_->num_nodes(), 32 * static_cast<uint64_t>(objects_.size()));
  store_ = PagedStore(PageLayout(record_bits, order), buffer);
}

uint64_t FullIndex::IndexBytes() const {
  return static_cast<uint64_t>(graph_->num_nodes()) * objects_.size() * 4;
}

Weight FullIndex::Distance(NodeId n, uint32_t object_index) const {
  DSIG_CHECK_LT(object_index, objects_.size());
  store_.TouchRecordAt(n, 32 * static_cast<uint64_t>(object_index));
  return dist_[Slot(n, object_index)];
}

std::vector<uint32_t> FullIndex::RangeQuery(NodeId n, Weight epsilon) const {
  store_.TouchRecord(n);
  std::vector<uint32_t> result;
  for (uint32_t o = 0; o < objects_.size(); ++o) {
    if (dist_[Slot(n, o)] <= epsilon) result.push_back(o);
  }
  return result;
}

std::vector<std::pair<Weight, uint32_t>> FullIndex::KnnQuery(NodeId n,
                                                             size_t k) const {
  store_.TouchRecord(n);
  std::vector<std::pair<Weight, uint32_t>> all;
  all.reserve(objects_.size());
  for (uint32_t o = 0; o < objects_.size(); ++o) {
    all.push_back({dist_[Slot(n, o)], o});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k),
                    all.end());
  all.resize(k);
  return all;
}

}  // namespace dsig
