#include "io/binary_io.h"

namespace dsig {

BinaryWriter::BinaryWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteRaw(const void* data, size_t bytes) {
  DSIG_CHECK(file_ != nullptr);
  DSIG_CHECK_EQ(std::fwrite(data, 1, bytes, file_), bytes);
}

void BinaryWriter::WriteU32(uint32_t value) {
  uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
  WriteRaw(buf, 4);
}

void BinaryWriter::WriteU64(uint64_t value) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
  WriteRaw(buf, 8);
}

void BinaryWriter::WriteDouble(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteU64(bytes.size());
  if (!bytes.empty()) WriteRaw(bytes.data(), bytes.size());
}

BinaryReader::BinaryReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryReader::ReadRaw(void* data, size_t bytes) {
  DSIG_CHECK(file_ != nullptr);
  DSIG_CHECK_EQ(std::fread(data, 1, bytes, file_), bytes)
      << "truncated or corrupt file";
}

uint32_t BinaryReader::ReadU32() {
  uint8_t buf[4];
  ReadRaw(buf, 4);
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return value;
}

uint64_t BinaryReader::ReadU64() {
  uint8_t buf[8];
  ReadRaw(buf, 8);
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return value;
}

double BinaryReader::ReadDouble() {
  const uint64_t bits = ReadU64();
  double value;
  __builtin_memcpy(&value, &bits, sizeof(value));
  return value;
}

std::vector<uint8_t> BinaryReader::ReadBytes() {
  std::vector<uint8_t> bytes(ReadU64());
  if (!bytes.empty()) ReadRaw(bytes.data(), bytes.size());
  return bytes;
}

std::vector<uint32_t> BinaryReader::ReadVectorU32() {
  std::vector<uint32_t> values(ReadU64());
  for (uint32_t& v : values) v = ReadU32();
  return values;
}

std::vector<double> BinaryReader::ReadVectorDouble() {
  std::vector<double> values(ReadU64());
  for (double& v : values) v = ReadDouble();
  return values;
}

}  // namespace dsig
