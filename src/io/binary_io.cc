#include "io/binary_io.h"

#include <cstring>

#include "util/crc32c.h"

namespace dsig {

BinaryWriter::BinaryWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot create " + path);
  }
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteRaw(const void* data, size_t bytes) {
  if (!status_.ok()) return;
  if (fault_plan_.fail_at != kNoFault &&
      bytes_written_ + bytes > fault_plan_.fail_at) {
    status_ = Status::IoError("injected write failure at byte " +
                              std::to_string(fault_plan_.fail_at));
    return;
  }
  if (std::fwrite(data, 1, bytes, file_) != bytes) {
    status_ = Status::IoError("short write at byte " +
                              std::to_string(bytes_written_) +
                              " (disk full?)");
    return;
  }
  section_crc_ = Crc32cExtend(section_crc_, data, bytes);
  bytes_written_ += bytes;
}

void BinaryWriter::WriteU32(uint32_t value) {
  uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
  WriteRaw(buf, 4);
}

void BinaryWriter::WriteU64(uint64_t value) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
  WriteRaw(buf, 8);
}

void BinaryWriter::WriteDouble(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteU64(bytes.size());
  if (!bytes.empty()) WriteRaw(bytes.data(), bytes.size());
}

void BinaryWriter::EndSection() {
  // Snapshot first: writing the checksum itself advances the running CRC,
  // but the next BeginSection() resets it anyway.
  const uint32_t crc = section_crc_;
  WriteU32(crc);
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return status_;
  if (std::fflush(file_) != 0 && status_.ok()) {
    status_ = Status::IoError("fflush failed (disk full?)");
  }
  if (std::fclose(file_) != 0 && status_.ok()) {
    status_ = Status::IoError("fclose failed");
  }
  file_ = nullptr;
  return status_;
}

BinaryReader::BinaryReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::NotFound("cannot open " + path);
    return;
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    status_ = Status::IoError("cannot seek " + path);
    return;
  }
  const long size = std::ftell(file_);
  if (size < 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    status_ = Status::IoError("cannot size " + path);
    return;
  }
  file_size_ = static_cast<uint64_t>(size);
  effective_size_ = file_size_;
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryReader::InjectFaults(const ReadFaultPlan& plan) {
  fault_plan_ = plan;
  if (plan.truncate_at != kNoFault && plan.truncate_at < effective_size_) {
    effective_size_ = plan.truncate_at;
  }
}

void BinaryReader::Fail(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

void BinaryReader::ReadRaw(void* data, size_t bytes) {
  std::memset(data, 0, bytes);
  if (!status_.ok()) return;
  if (bytes > remaining()) {
    Fail(Status::Corruption("unexpected end of file at byte " +
                            std::to_string(position_) + " (file has " +
                            std::to_string(effective_size_) + " bytes)"));
    return;
  }
  if (fault_plan_.fail_at != kNoFault && fault_plan_.fail_at < position_ + bytes) {
    Fail(Status::IoError("injected read failure at byte " +
                         std::to_string(fault_plan_.fail_at)));
    return;
  }
  if (std::fread(data, 1, bytes, file_) != bytes) {
    Fail(Status::IoError("read failed at byte " + std::to_string(position_)));
    return;
  }
  // Bit flips are applied after the physical read and before the CRC update:
  // the checksum layer sees exactly what a corrupted medium would hand it.
  if (fault_plan_.flip_byte != kNoFault && fault_plan_.flip_byte >= position_ &&
      fault_plan_.flip_byte < position_ + bytes) {
    static_cast<uint8_t*>(data)[fault_plan_.flip_byte - position_] ^=
        fault_plan_.flip_mask;
  }
  section_crc_ = Crc32cExtend(section_crc_, data, bytes);
  position_ += bytes;
}

uint32_t BinaryReader::ReadU32() {
  uint8_t buf[4];
  ReadRaw(buf, 4);
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return value;
}

uint64_t BinaryReader::ReadU64() {
  uint8_t buf[8];
  ReadRaw(buf, 8);
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return value;
}

double BinaryReader::ReadDouble() {
  const uint64_t bits = ReadU64();
  double value;
  __builtin_memcpy(&value, &bits, sizeof(value));
  return value;
}

std::vector<uint8_t> BinaryReader::ReadBytes() {
  const uint64_t count = ReadU64();
  if (!status_.ok()) return {};
  if (count > remaining()) {
    Fail(Status::Corruption("byte-array length " + std::to_string(count) +
                            " exceeds the " + std::to_string(remaining()) +
                            " bytes remaining"));
    return {};
  }
  std::vector<uint8_t> bytes(count);
  if (!bytes.empty()) ReadRaw(bytes.data(), bytes.size());
  return bytes;
}

std::vector<uint32_t> BinaryReader::ReadVectorU32() {
  const uint64_t count = ReadU64();
  if (!status_.ok()) return {};
  if (count > remaining() / 4) {
    Fail(Status::Corruption("u32-vector length " + std::to_string(count) +
                            " exceeds the " + std::to_string(remaining()) +
                            " bytes remaining"));
    return {};
  }
  std::vector<uint32_t> values(count);
  for (uint32_t& v : values) v = ReadU32();
  return values;
}

std::vector<double> BinaryReader::ReadVectorDouble() {
  const uint64_t count = ReadU64();
  if (!status_.ok()) return {};
  if (count > remaining() / 8) {
    Fail(Status::Corruption("double-vector length " + std::to_string(count) +
                            " exceeds the " + std::to_string(remaining()) +
                            " bytes remaining"));
    return {};
  }
  std::vector<double> values(count);
  for (double& v : values) v = ReadDouble();
  return values;
}

Status BinaryReader::VerifySection(const char* section_name) {
  // Snapshot before consuming the stored checksum — reading it would fold
  // the checksum bytes into the running CRC.
  const uint32_t computed = section_crc_;
  const uint32_t stored = ReadU32();
  if (!status_.ok()) return status_;
  if (computed != stored) {
    Fail(Status::Corruption(std::string(section_name) +
                            " section checksum mismatch (file is corrupt)"));
  }
  return status_;
}

}  // namespace dsig
