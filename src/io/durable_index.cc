#include "io/durable_index.h"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace dsig {
namespace {

// MANIFEST: magic "DSMF" (u32) · version (u32) · checkpoint seq (u64) ·
// crc32c(preceding 16 bytes) (u32). Same 20-byte shape as the WAL header so
// the corruption tests can reuse their sweeps.
constexpr uint32_t kManifestMagic = 0x464D5344;  // "DSMF"
constexpr uint32_t kManifestVersion = 1;
constexpr size_t kManifestBytes = 4 + 4 + 8 + 4;

void PutU32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
  out[2] = static_cast<uint8_t>(v >> 16);
  out[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | static_cast<uint32_t>(in[1]) << 8 |
         static_cast<uint32_t>(in[2]) << 16 |
         static_cast<uint32_t>(in[3]) << 24;
}

uint64_t GetU64(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | in[i];
  return v;
}

// Writes the manifest via temp+fsync+rename, with the same crash semantics
// as UpdateLog::Create: bytes strictly before faults.fail_at reach the temp
// file, and a triggered fault aborts before the rename, so the previous
// manifest stays authoritative.
Status WriteManifest(const std::string& path, uint64_t seq,
                     const WriteFaultPlan& faults) {
  uint8_t bytes[kManifestBytes];
  PutU32(bytes, kManifestMagic);
  PutU32(bytes + 4, kManifestVersion);
  PutU64(bytes + 8, seq);
  PutU32(bytes + 16, Crc32c(bytes, 16));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create " + tmp);
  const size_t writable =
      faults.fail_at < kManifestBytes ? faults.fail_at : kManifestBytes;
  const bool crashed = writable < kManifestBytes;
  if (writable > 0 && std::fwrite(bytes, 1, writable, f) != writable) {
    std::fclose(f);
    return Status::IoError("short write to " + tmp);
  }
  if (std::fflush(f) != 0 || fsync(fileno(f)) != 0) {
    std::fclose(f);
    return Status::IoError("flush/fsync failed for " + tmp);
  }
  std::fclose(f);
  if (crashed) {
    return Status::IoError("injected crash while writing manifest " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename failed for " + path);
  }
  return Status::Ok();
}

StatusOr<uint64_t> ReadManifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no manifest at " + path);
  uint8_t bytes[kManifestBytes];
  const size_t got = std::fread(bytes, 1, kManifestBytes, f);
  std::fclose(f);
  if (got != kManifestBytes) {
    return Status::Corruption("manifest " + path + " is truncated");
  }
  if (GetU32(bytes) != kManifestMagic) {
    return Status::Corruption("manifest " + path + " has wrong magic");
  }
  if (GetU32(bytes + 4) != kManifestVersion) {
    return Status::Corruption("manifest " + path +
                              " has unsupported version " +
                              std::to_string(GetU32(bytes + 4)));
  }
  if (GetU32(bytes + 16) != Crc32c(bytes, 16)) {
    return Status::Corruption("manifest " + path + " checksum mismatch");
  }
  return GetU64(bytes + 8);
}

// Range checks a record must pass against the *current* graph before it can
// go through SignatureUpdater (whose preconditions are DSIG_CHECKs, not
// Statuses). Mirrors UpdateRecord::ApplyTo without mutating.
Status CheckApplicable(const RoadNetwork& graph, const UpdateRecord& record) {
  DSIG_RETURN_IF_ERROR(record.Validate());
  switch (record.op) {
    case UpdateRecord::kAddEdge:
      if (record.a >= graph.num_nodes() || record.b >= graph.num_nodes()) {
        return Status::Corruption("logged AddEdge endpoint out of range");
      }
      return Status::Ok();
    case UpdateRecord::kRemoveEdge:
    case UpdateRecord::kSetEdgeWeight:
      if (record.a >= graph.num_edge_slots()) {
        return Status::Corruption("logged edge id out of range");
      }
      if (graph.edge_removed(record.a)) {
        return Status::Corruption("logged op names a removed edge");
      }
      return Status::Ok();
  }
  return Status::Corruption("unknown update op");
}

obs::Counter* CheckpointCounter() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("wal.checkpoints");
  return c;
}

obs::Counter* CheckpointRetryCounter() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("update.ckpt_retries");
  return c;
}

}  // namespace

std::string DurableUpdater::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}
std::string DurableUpdater::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}
std::string DurableUpdater::NetworkCheckpointPath(const std::string& dir,
                                                  uint64_t seq) {
  return dir + "/network." + std::to_string(seq) + ".ckpt";
}
std::string DurableUpdater::IndexCheckpointPath(const std::string& dir,
                                                uint64_t seq) {
  return dir + "/index." + std::to_string(seq) + ".ckpt";
}

DurableUpdater::DurableUpdater(std::string dir, RoadNetwork* graph,
                               SignatureIndex* index,
                               const DurableOptions& options)
    : dir_(std::move(dir)),
      graph_(graph),
      index_(index),
      options_(options),
      updater_(graph, index) {}

DurableUpdater::~DurableUpdater() { Close(); }

Status DurableUpdater::OpenWal() {
  auto wal = UpdateLog::Open(WalPath(dir_), options_.wal_faults);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();
  return Status::Ok();
}

StatusOr<std::unique_ptr<DurableUpdater>> DurableUpdater::Initialize(
    const std::string& dir, RoadNetwork* graph, SignatureIndex* index,
    const DurableOptions& options) {
  // Checkpoint pair first, WAL second, MANIFEST last: the rename is the
  // commit point, so a crash anywhere earlier leaves no readable deployment
  // (and never clobbers an existing one's MANIFEST).
  const SaveOptions save{options.checkpoint_faults};
  DSIG_RETURN_IF_ERROR(
      SaveRoadNetwork(*graph, NetworkCheckpointPath(dir, 0), save));
  DSIG_RETURN_IF_ERROR(
      SaveSignatureIndex(*index, IndexCheckpointPath(dir, 0), save));
  DSIG_RETURN_IF_ERROR(UpdateLog::Create(WalPath(dir), 0, options.wal_faults));
  DSIG_RETURN_IF_ERROR(
      WriteManifest(ManifestPath(dir), 0, options.checkpoint_faults));

  std::unique_ptr<DurableUpdater> updater(
      new DurableUpdater(dir, graph, index, options));
  DSIG_RETURN_IF_ERROR(updater->OpenWal());
  return updater;
}

StatusOr<DurableUpdater::Recovered> DurableUpdater::Recover(
    const std::string& dir, const DurableOptions& options,
    const RecoverOptions& recover) {
  auto seq = ReadManifest(ManifestPath(dir));
  if (!seq.ok()) return seq.status();
  const uint64_t checkpoint_seq = seq.value();

  Recovered result;
  auto graph = LoadRoadNetwork(NetworkCheckpointPath(dir, checkpoint_seq));
  if (!graph.ok()) return graph.status();
  result.graph = std::move(graph).value();
  auto index = LoadSignatureIndex(*result.graph,
                                  IndexCheckpointPath(dir, checkpoint_seq));
  if (!index.ok()) return index.status();
  result.index = std::move(index).value();
  // Checkpoints do not persist the spanning forest; replay needs it.
  result.index->RebuildForest();

  // Scan the committed WAL tail before touching anything. A log whose
  // base_seq is *behind* the manifest is the legal crash window between
  // "MANIFEST renamed" and "WAL restarted"; one *ahead* of it means the
  // manifest regressed, which no crash can produce.
  auto replay = UpdateLog::Replay(WalPath(dir), recover.wal_faults);
  if (!replay.ok()) return replay.status();
  if (replay->base_seq > checkpoint_seq) {
    return Status::Corruption(
        "wal base_seq " + std::to_string(replay->base_seq) +
        " is ahead of manifest seq " + std::to_string(checkpoint_seq));
  }

  result.updater.reset(
      new DurableUpdater(dir, result.graph.get(), result.index.get(), options));
  result.updater->checkpoint_seq_ = checkpoint_seq;
  DSIG_RETURN_IF_ERROR(result.updater->OpenWal());

  // Re-apply the committed records the checkpoint has not yet absorbed.
  // seq <= checkpoint_seq records were already folded into the loaded state;
  // replaying an AddEdge among them would allocate a duplicate EdgeId.
  auto& registry = obs::MetricsRegistry::Global();
  for (size_t i = 0; i < replay->records.size(); ++i) {
    const uint64_t record_seq = replay->base_seq + i + 1;
    if (record_seq <= checkpoint_seq) continue;
    const UpdateRecord& record = replay->records[i];
    DSIG_RETURN_IF_ERROR(CheckApplicable(*result.graph, record));
    result.updater->updater_.Apply(record);
    ++result.replayed_records;
  }
  registry.GetCounter("wal.recoveries")->Add(1);
  registry.GetCounter("wal.replayed_records")->Add(result.replayed_records);

  if (recover.verify) DSIG_RETURN_IF_ERROR(result.index->Verify());
  return result;
}

uint64_t DurableUpdater::next_seq() const {
  return wal_ == nullptr ? 0 : wal_->base_seq() + wal_->record_count() + 1;
}

uint64_t DurableUpdater::records_since_checkpoint() const {
  if (wal_ == nullptr) return 0;
  const uint64_t applied = wal_->base_seq() + wal_->record_count();
  return applied > checkpoint_seq_ ? applied - checkpoint_seq_ : 0;
}

StatusOr<UpdateStats> DurableUpdater::Apply(const UpdateRecord& record) {
  if (!status_.ok()) return status_;
  if (closed_ || wal_ == nullptr) {
    return Status::FailedPrecondition("durable updater is closed");
  }
  // Reject malformed records before they reach the log: a record that could
  // not replay must never be written.
  {
    const Status applicable = CheckApplicable(*graph_, record);
    if (!applicable.ok()) {
      return Status::InvalidArgument("rejected update: " +
                                     applicable.message());
    }
  }

  // Log first. A WAL failure latches: the mutation is NOT applied, so the
  // in-memory state never runs ahead of what recovery can reproduce.
  Status logged = wal_->Append(record);
  if (logged.ok() && options_.sync == DurableOptions::SyncMode::kEveryRecord) {
    logged = wal_->Sync();
  }
  if (!logged.ok()) {
    status_ = logged;
    return status_;
  }

  const UpdateStats stats = updater_.Apply(record);

  if (options_.checkpoint_interval > 0 &&
      records_since_checkpoint() >= options_.checkpoint_interval) {
    // Auto-checkpoint. The update above is already durable in the WAL, so a
    // non-sticky checkpoint failure (old checkpoint + log still fully
    // authoritative) does not fail the Apply; a sticky one latches into
    // status_ and the *next* Apply refuses.
    Checkpoint();
  }
  return stats;
}

Status DurableUpdater::Checkpoint() {
  if (!status_.ok()) return status_;
  if (closed_ || wal_ == nullptr) {
    return Status::FailedPrecondition("durable updater is closed");
  }
  // Commit the log tail first so the checkpointed state is a superset of the
  // durable log — required for base_seq to be honest.
  DSIG_RETURN_IF_ERROR(wal_->Sync());
  const uint64_t seq = wal_->base_seq() + wal_->record_count();

  // Failures before the MANIFEST rename leave the previous checkpoint + full
  // WAL authoritative: report, don't latch — and, being non-sticky, they are
  // safely retryable. Each save is all-or-nothing (temp + rename), so a
  // retry never sees a partial file from the previous attempt.
  WriteFaultPlan faults = options_.checkpoint_faults;
  Random jitter(options_.ckpt_retry_jitter_seed);
  for (int attempt = 0;; ++attempt) {
    Status saved = SaveRoadNetwork(*graph_, NetworkCheckpointPath(dir_, seq),
                                   SaveOptions{faults});
    if (saved.ok()) {
      saved = SaveSignatureIndex(*index_, IndexCheckpointPath(dir_, seq),
                                 SaveOptions{faults});
    }
    if (saved.ok()) {
      saved = WriteManifest(ManifestPath(dir_), seq, faults);
    }
    if (saved.ok()) break;
    if (attempt >= options_.ckpt_retries) return saved;
    CheckpointRetryCounter()->Add(1);
    if (options_.checkpoint_faults_transient) faults = WriteFaultPlan{};
    // Exponential backoff with ±50% jitter, deterministic under the seed.
    const double backoff_ms = options_.ckpt_retry_backoff_ms *
                              std::pow(2.0, static_cast<double>(attempt)) *
                              jitter.NextDouble(0.5, 1.5);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }

  const uint64_t old_seq = checkpoint_seq_;
  checkpoint_seq_ = seq;
  CheckpointCounter()->Add(1);

  // Restart the WAL at the committed seq. A crash (or injected fault) here
  // is the protocol's designed window: the old log survives the failed
  // atomic Create, and recovery seq-skips its absorbed prefix. If the
  // restart fails but the old log reopens, appends simply continue there.
  wal_->Close();
  wal_.reset();
  const Status recreated =
      UpdateLog::Create(WalPath(dir_), seq, options_.wal_faults);
  const Status reopened = OpenWal();
  if (!reopened.ok()) {
    // No appendable log at all: nothing further can be made durable.
    status_ = reopened;
    return status_;
  }
  if (old_seq != checkpoint_seq_) {
    std::remove(NetworkCheckpointPath(dir_, old_seq).c_str());
    std::remove(IndexCheckpointPath(dir_, old_seq).c_str());
  }
  return recreated;
}

Status DurableUpdater::Close() {
  if (closed_) return status_;
  closed_ = true;
  if (wal_ != nullptr) {
    const Status closed = wal_->Close();
    if (status_.ok() && !closed.ok()) status_ = closed;
    wal_.reset();
  }
  return status_;
}

}  // namespace dsig
