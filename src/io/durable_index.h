// Crash-consistent live updates: WAL + checkpoint orchestration.
//
// core/update_log.h gives the log file; core/update.h gives in-memory
// maintenance. DurableUpdater composes them into the full durability
// protocol a long-running deployment needs:
//
//   apply      append the record to the WAL (fsync per sync policy) and only
//              then mutate the index through SignatureUpdater.
//   checkpoint persist network.<seq>.ckpt + index.<seq>.ckpt with the atomic
//              temp+rename saves from persistence.h, commit them by renaming
//              MANIFEST (which names seq), then restart the WAL at base_seq =
//              seq and delete the superseded checkpoint pair.
//   recover    read MANIFEST, load the checkpoint pair it names, rebuild the
//              spanning forest, replay the WAL's committed tail skipping
//              records with seq <= the manifest's (a crash between "MANIFEST
//              renamed" and "WAL restarted" leaves already-checkpointed
//              records in the old log; replaying an AddEdge twice would
//              allocate a duplicate EdgeId).
//
// The MANIFEST rename is the commit point of every checkpoint; a crash at
// any byte of the protocol recovers to either the old checkpoint + full log
// or the new checkpoint + (possibly stale but seq-skipped) log. Failure
// handling mirrors UpdateLog: WAL-side errors are sticky (an update whose
// log record may not be durable must not be applied), while a failed
// checkpoint leaves the previous checkpoint + log fully valid and is
// reported but not latched.
#ifndef DSIG_IO_DURABLE_INDEX_H_
#define DSIG_IO_DURABLE_INDEX_H_

#include <memory>
#include <string>

#include "core/update.h"
#include "core/update_log.h"
#include "io/persistence.h"
#include "util/fault_plan.h"
#include "util/status.h"

namespace dsig {

struct DurableOptions {
  enum class SyncMode {
    kNone,        // never fsync between checkpoints (fastest, weakest)
    kCheckpoint,  // fsync the WAL only when a checkpoint begins
    kEveryRecord  // fsync after every append (classic WAL, default)
  };
  SyncMode sync = SyncMode::kEveryRecord;

  // Auto-checkpoint after this many applied records; 0 = manual only.
  uint64_t checkpoint_interval = 0;

  // Deterministic crash injection, keyed on absolute WAL byte offsets
  // (update_log.h). Applies to WAL appends and WAL re-creation.
  WriteFaultPlan wal_faults;

  // Crash injection for the checkpoint saves (network/index/manifest).
  WriteFaultPlan checkpoint_faults;

  // Non-sticky checkpoint failures (any step before the MANIFEST rename —
  // the old checkpoint + WAL are still fully authoritative) are retried up
  // to this many more times with exponential backoff before Checkpoint()
  // reports the error. Retries count update.ckpt_retries. Sticky failures
  // (WAL restart) are never retried: the failed state is already latched.
  int ckpt_retries = 0;
  double ckpt_retry_backoff_ms = 2;  // doubled per attempt, jittered ±50%
  uint64_t ckpt_retry_jitter_seed = 1;

  // Test seam modelling *transient* I/O errors: when true, checkpoint_faults
  // fires on the first save attempt only and retries run fault-free.
  bool checkpoint_faults_transient = false;
};

struct RecoverOptions {
  // Run SignatureIndex::Verify() on the recovered index.
  bool verify = false;

  // Fault injection for the WAL scan (corruption sweeps).
  ReadFaultPlan wal_faults;
};

// Single-writer durable façade over SignatureUpdater. Queries may run
// concurrently with Apply (they snapshot via the index's EpochGate); a
// second concurrent writer is not allowed.
class DurableUpdater {
 public:
  // Everything Recover() hands back: the reloaded network and index (owned),
  // plus the updater positioned at the committed WAL tail.
  struct Recovered {
    std::unique_ptr<RoadNetwork> graph;
    std::unique_ptr<SignatureIndex> index;
    std::unique_ptr<DurableUpdater> updater;
    uint64_t replayed_records = 0;  // WAL records re-applied past the ckpt
  };

  // Lays out a fresh durable directory for an in-memory pair (which the
  // caller keeps owning): checkpoint files at seq 0, an empty WAL, and the
  // MANIFEST committing them. `dir` must already exist. Fails without
  // touching MANIFEST if any step fails, so an existing deployment is never
  // half-overwritten.
  static StatusOr<std::unique_ptr<DurableUpdater>> Initialize(
      const std::string& dir, RoadNetwork* graph, SignatureIndex* index,
      const DurableOptions& options = {});

  // Restores the deployment in `dir`: checkpoint load + committed-tail
  // replay, per the protocol above. The recovered index has its spanning
  // forest rebuilt and is ready for further Apply calls.
  static StatusOr<Recovered> Recover(const std::string& dir,
                                     const DurableOptions& options = {},
                                     const RecoverOptions& recover = {});

  DurableUpdater(const DurableUpdater&) = delete;
  DurableUpdater& operator=(const DurableUpdater&) = delete;
  ~DurableUpdater();

  // Log-then-apply. On a WAL failure the record is NOT applied, the error
  // latches, and every later Apply refuses with it. May trigger an
  // auto-checkpoint (options.checkpoint_interval).
  StatusOr<UpdateStats> Apply(const UpdateRecord& record);

  // Convenience wrappers building the record for the common mutations.
  StatusOr<UpdateStats> AddEdge(NodeId u, NodeId v, Weight weight) {
    return Apply(UpdateRecord::Add(u, v, weight));
  }
  StatusOr<UpdateStats> RemoveEdge(EdgeId edge) {
    return Apply(UpdateRecord::Remove(edge));
  }
  StatusOr<UpdateStats> SetEdgeWeight(EdgeId edge, Weight weight) {
    return Apply(UpdateRecord::SetWeight(edge, weight));
  }

  // Persists the current state and restarts the WAL. Callable any time the
  // writer is quiesced. A failure before the MANIFEST rename leaves the old
  // checkpoint + WAL fully authoritative (not sticky); a failure after it
  // (WAL restart) is sticky, because the next Apply could not be logged.
  Status Checkpoint();

  // Flushes and closes the WAL (idempotent). Further Applies refuse.
  Status Close();

  const Status& status() const { return status_; }
  // Sequence number the next applied record will carry.
  uint64_t next_seq() const;
  uint64_t checkpoint_seq() const { return checkpoint_seq_; }
  uint64_t records_since_checkpoint() const;
  const std::string& dir() const { return dir_; }

  // File-name helpers, shared with tests and the chaos tool.
  static std::string ManifestPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);
  static std::string NetworkCheckpointPath(const std::string& dir,
                                           uint64_t seq);
  static std::string IndexCheckpointPath(const std::string& dir, uint64_t seq);

 private:
  DurableUpdater(std::string dir, RoadNetwork* graph, SignatureIndex* index,
                 const DurableOptions& options);

  Status OpenWal();

  std::string dir_;
  RoadNetwork* graph_;
  SignatureIndex* index_;
  DurableOptions options_;
  SignatureUpdater updater_;
  std::unique_ptr<UpdateLog> wal_;
  Status status_;
  uint64_t checkpoint_seq_ = 0;  // seq committed by the live MANIFEST
  bool closed_ = false;
};

}  // namespace dsig

#endif  // DSIG_IO_DURABLE_INDEX_H_
