// Persistence of road networks and signature indexes.
//
// A deployment builds the index once (minutes of Dijkstras) and serves
// queries from a loaded copy, so a corrupt or stale index file silently
// producing wrong distances is the deployment's biggest risk. The format and
// API are built around that:
//
//   * Errors are values (util/status.h) — a truncated, bit-flipped, or
//     wrong-version file yields a descriptive Status, never an abort.
//   * Every section of the file carries a CRC-32C, and a footer records the
//     payload length, so truncation and bit rot are caught at load time.
//   * Every length field is validated against the bytes actually remaining
//     before any allocation.
//   * Saves write to `<path>.tmp` and rename into place only after a clean
//     flush+close, so a failed save never clobbers a good file.
//   * LoadOptions::verify additionally runs SignatureIndex::Verify() — the
//     deep invariant check (link chains, categories, compression rule) — for
//     paranoid deployments.
//
// Format version history:
//   1  magic + version + raw fields, no integrity metadata (retired).
//   2  per-section CRC-32C + length footer (current).
//
// The index file stores everything but the spanning forest (rebuild it with
// SignatureIndex::RebuildForest() if you need updates) and is validated
// against the graph it is loaded for.
#ifndef DSIG_IO_PERSISTENCE_H_
#define DSIG_IO_PERSISTENCE_H_

#include <memory>
#include <string>

#include "core/signature_index.h"
#include "graph/road_network.h"
#include "io/binary_io.h"
#include "util/status.h"

namespace dsig {

// Deterministic fault injection for save/load, threaded through to the
// underlying BinaryWriter/BinaryReader (corruption tests).
struct SaveOptions {
  WriteFaultPlan faults;
};

struct LoadOptions {
  // Run SignatureIndex::Verify() after loading (index loads only): proves
  // the deep invariants at O(|V|·|objects|) cost instead of trusting the
  // checksums alone.
  bool verify = false;
  ReadFaultPlan faults;
};

// --- road networks --------------------------------------------------------

// Writes the network (positions, edges incl. tombstones, weights) to `path`
// via temp-file-and-rename.
Status SaveRoadNetwork(const RoadNetwork& graph, const std::string& path,
                       const SaveOptions& options = {});

// Loads a network. Round-trips node ids, edge ids, and adjacency slot order
// exactly (backtracking links depend on it).
StatusOr<std::unique_ptr<RoadNetwork>> LoadRoadNetwork(
    const std::string& path, const LoadOptions& options = {});

// --- signature indexes ----------------------------------------------------

Status SaveSignatureIndex(const SignatureIndex& index, const std::string& path,
                          const SaveOptions& options = {});

// Loads an index over `graph` (which must be the very network the index was
// built on — node/edge counts are checked). The loaded index has no attached
// storage and no forest.
StatusOr<std::unique_ptr<SignatureIndex>> LoadSignatureIndex(
    const RoadNetwork& graph, const std::string& path,
    const LoadOptions& options = {});

}  // namespace dsig

#endif  // DSIG_IO_PERSISTENCE_H_
