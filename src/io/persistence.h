// Persistence of road networks and signature indexes.
//
// A deployment builds the index once (minutes of Dijkstras) and serves
// queries from a loaded copy. The index file stores everything but the
// spanning forest (rebuild it with SignatureIndex::RebuildForest() if you
// need updates) and is validated against the graph it is loaded for.
#ifndef DSIG_IO_PERSISTENCE_H_
#define DSIG_IO_PERSISTENCE_H_

#include <memory>
#include <string>

#include "core/signature_index.h"
#include "graph/road_network.h"

namespace dsig {

// --- road networks --------------------------------------------------------

// Writes the network (positions, edges incl. tombstones, weights) to `path`.
// Returns false when the file cannot be created.
bool SaveRoadNetwork(const RoadNetwork& graph, const std::string& path);

// Loads a network; null on open/validation failure. Round-trips node ids,
// edge ids, and adjacency slot order exactly (backtracking links depend on
// it).
std::unique_ptr<RoadNetwork> LoadRoadNetwork(const std::string& path);

// --- signature indexes ----------------------------------------------------

bool SaveSignatureIndex(const SignatureIndex& index, const std::string& path);

// Loads an index over `graph` (which must be the very network the index was
// built on — node/edge counts are checked). Null on failure. The loaded
// index has no attached storage and no forest.
std::unique_ptr<SignatureIndex> LoadSignatureIndex(const RoadNetwork& graph,
                                                   const std::string& path);

}  // namespace dsig

#endif  // DSIG_IO_PERSISTENCE_H_
