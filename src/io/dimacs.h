// DIMACS road-network format support (9th DIMACS Implementation Challenge).
//
// Public road datasets — including the USA road networks commonly used by
// follow-up work to this paper — ship as DIMACS ".gr" (graph: "a u v w"
// arcs, 1-based ids) and ".co" (coordinates: "v id x y") files. Loading
// them gives this library real road data without redistribution issues.
//
// DIMACS graphs are directed with symmetric arc pairs; we fold them into the
// paper's undirected model, keeping the smaller weight when a pair's weights
// disagree and dropping self-loops.
#ifndef DSIG_IO_DIMACS_H_
#define DSIG_IO_DIMACS_H_

#include <memory>
#include <string>

#include "graph/road_network.h"

namespace dsig {

// Parses a .gr file (and optionally a .co coordinates file; pass "" to use
// all-zero positions). Returns null when a file cannot be opened or the
// header is malformed; body format violations are fatal (corrupt data).
std::unique_ptr<RoadNetwork> LoadDimacsGraph(const std::string& gr_path,
                                             const std::string& co_path);

// Writes the network as a .gr / .co pair (each undirected edge as two arcs).
bool SaveDimacsGraph(const RoadNetwork& graph, const std::string& gr_path,
                     const std::string& co_path);

}  // namespace dsig

#endif  // DSIG_IO_DIMACS_H_
