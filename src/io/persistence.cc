#include "io/persistence.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "core/hub_labels.h"
#include "obs/metrics.h"
#include "util/huffman.h"

namespace dsig {
namespace {

constexpr uint32_t kNetworkMagic = 0x4e475344;  // "DSGN"
constexpr uint32_t kIndexMagic = 0x49475344;    // "DSGI"
constexpr uint32_t kFooterMagic = 0x46475344;   // "DSGF"
constexpr uint32_t kVersion = 2;

// Bytes per serialized record, used to bound counts against the file size.
constexpr uint64_t kNodeRecordBytes = 16;    // x, y
constexpr uint64_t kEdgeRecordBytes = 20;    // u, v, weight, removed
constexpr uint64_t kSymbolRecordBytes = 12;  // length, code

Status Corrupt(const std::string& path, const std::string& detail) {
  return Status::Corruption(path + ": " + detail);
}

// Every save goes through here: the body writes into `<path>.tmp`, and the
// temp file is renamed over `path` only after a clean flush + close. A save
// that fails half-way (full disk, injected fault) leaves any existing file at
// `path` untouched and removes the temp.
Status AtomicSave(const std::string& path, const SaveOptions& options,
                  const std::function<void(BinaryWriter&)>& body) {
  const std::string temp = path + ".tmp";
  {
    BinaryWriter writer(temp);
    writer.InjectFaults(options.faults);
    if (writer.ok()) body(writer);
    const Status status = writer.Close();
    if (!status.ok()) {
      std::remove(temp.c_str());
      return status;
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::IoError("cannot rename " + temp + " over " + path);
  }
  return Status::Ok();
}

// The footer pins down the total payload length (everything before the
// footer), so a file truncated at a section boundary — where every section
// checksum still verifies — is still rejected.
void WriteFooter(BinaryWriter& writer) {
  const uint64_t payload_bytes = writer.bytes_written();
  writer.BeginSection();
  writer.WriteU32(kFooterMagic);
  writer.WriteU64(payload_bytes);
  writer.EndSection();
}

Status CheckFooter(BinaryReader& reader, const std::string& path) {
  const uint64_t payload_bytes = reader.position();
  reader.BeginSection();
  const uint32_t magic = reader.ReadU32();
  const uint64_t stored = reader.ReadU64();
  DSIG_RETURN_IF_ERROR(reader.VerifySection("footer"));
  if (magic != kFooterMagic) return Corrupt(path, "bad footer magic");
  if (stored != payload_bytes) {
    return Corrupt(path, "footer length " + std::to_string(stored) +
                             " does not match the " +
                             std::to_string(payload_bytes) +
                             " payload bytes present");
  }
  if (!reader.AtEnd()) return Corrupt(path, "trailing bytes after footer");
  return Status::Ok();
}

// Reads and validates the `magic` + version header shared by both formats.
Status CheckHeader(BinaryReader& reader, const std::string& path,
                   uint32_t magic, const char* kind) {
  const uint32_t stored_magic = reader.ReadU32();
  const uint32_t stored_version = reader.ReadU32();
  DSIG_RETURN_IF_ERROR(reader.status());
  if (stored_magic != magic) {
    return Corrupt(path,
                   std::string("not a dsig ") + kind + " file (bad magic)");
  }
  if (stored_version != kVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(stored_version) + " (expected " +
                             std::to_string(kVersion) + ")");
  }
  return Status::Ok();
}

}  // namespace

Status SaveRoadNetwork(const RoadNetwork& graph, const std::string& path,
                       const SaveOptions& options) {
  static obs::Histogram* const save_ms =
      obs::MetricsRegistry::Global().GetHistogram("persist.save_network_ms");
  const obs::ScopedTimer timer(save_ms);
  return AtomicSave(path, options, [&graph](BinaryWriter& writer) {
    writer.WriteU32(kNetworkMagic);
    writer.WriteU32(kVersion);

    writer.BeginSection();
    writer.WriteU64(graph.num_nodes());
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      writer.WriteDouble(graph.position(n).x);
      writer.WriteDouble(graph.position(n).y);
    }
    writer.EndSection();

    writer.BeginSection();
    writer.WriteU64(graph.num_edge_slots());
    for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
      const auto [u, v] = graph.edge_endpoints(e);
      writer.WriteU32(u);
      writer.WriteU32(v);
      writer.WriteDouble(graph.edge_weight(e));
      writer.WriteU32(graph.edge_removed(e) ? 1 : 0);
    }
    writer.EndSection();

    WriteFooter(writer);
  });
}

StatusOr<std::unique_ptr<RoadNetwork>> LoadRoadNetwork(
    const std::string& path, const LoadOptions& options) {
  static obs::Histogram* const load_ms =
      obs::MetricsRegistry::Global().GetHistogram("persist.load_network_ms");
  const obs::ScopedTimer timer(load_ms);
  BinaryReader reader(path);
  reader.InjectFaults(options.faults);
  DSIG_RETURN_IF_ERROR(reader.status());
  DSIG_RETURN_IF_ERROR(CheckHeader(reader, path, kNetworkMagic, "road-network"));

  auto graph = std::make_unique<RoadNetwork>();

  reader.BeginSection();
  const uint64_t nodes = reader.ReadU64();
  DSIG_RETURN_IF_ERROR(reader.status());
  if (nodes > reader.remaining() / kNodeRecordBytes) {
    return Corrupt(path, "node count " + std::to_string(nodes) +
                             " exceeds the bytes left in the file");
  }
  for (uint64_t n = 0; n < nodes; ++n) {
    const double x = reader.ReadDouble();
    const double y = reader.ReadDouble();
    graph->AddNode({x, y});
  }
  DSIG_RETURN_IF_ERROR(reader.VerifySection("node"));

  // Replaying AddEdge in edge-id order reproduces adjacency slot order
  // exactly — backtracking links depend on it. Every field is validated
  // before AddEdge, whose preconditions (distinct existing endpoints,
  // positive finite weight) are CHECK-enforced.
  reader.BeginSection();
  const uint64_t edges = reader.ReadU64();
  DSIG_RETURN_IF_ERROR(reader.status());
  if (edges > reader.remaining() / kEdgeRecordBytes) {
    return Corrupt(path, "edge count " + std::to_string(edges) +
                             " exceeds the bytes left in the file");
  }
  for (uint64_t e = 0; e < edges; ++e) {
    const NodeId u = reader.ReadU32();
    const NodeId v = reader.ReadU32();
    const Weight w = reader.ReadDouble();
    const uint32_t removed = reader.ReadU32();
    DSIG_RETURN_IF_ERROR(reader.status());
    if (u >= nodes || v >= nodes) {
      return Corrupt(path, "edge " + std::to_string(e) +
                               " endpoint out of range");
    }
    if (u == v) {
      return Corrupt(path, "edge " + std::to_string(e) + " is a self-loop");
    }
    if (!std::isfinite(w) || w <= 0) {
      return Corrupt(path, "edge " + std::to_string(e) +
                               " has a non-positive or non-finite weight");
    }
    if (removed > 1) {
      return Corrupt(path, "edge " + std::to_string(e) +
                               " has a malformed tombstone flag");
    }
    const EdgeId id = graph->AddEdge(u, v, w);
    if (removed == 1) graph->RemoveEdge(id);
  }
  DSIG_RETURN_IF_ERROR(reader.VerifySection("edge"));

  DSIG_RETURN_IF_ERROR(CheckFooter(reader, path));
  return graph;
}

Status SaveSignatureIndex(const SignatureIndex& index, const std::string& path,
                          const SaveOptions& options) {
  static obs::Histogram* const save_ms =
      obs::MetricsRegistry::Global().GetHistogram("persist.save_index_ms");
  const obs::ScopedTimer timer(save_ms);
  return AtomicSave(path, options, [&index](BinaryWriter& writer) {
    writer.WriteU32(kIndexMagic);
    writer.WriteU32(kVersion);

    // Fingerprint of the graph the index belongs to.
    writer.BeginSection();
    writer.WriteU64(index.graph().num_nodes());
    writer.WriteU64(index.graph().num_edge_slots());
    writer.EndSection();

    writer.BeginSection();
    writer.WriteVectorU32(index.objects());
    writer.EndSection();

    const CategoryPartition& partition = index.partition();
    writer.BeginSection();
    writer.WriteVectorDouble(partition.boundaries());
    writer.WriteDouble(partition.t());
    writer.WriteDouble(partition.c());
    writer.EndSection();

    const SignatureCodec& codec = index.codec();
    writer.BeginSection();
    writer.WriteU32(static_cast<uint32_t>(codec.link_bits()));
    writer.WriteU32(codec.has_flags() ? 1 : 0);
    const HuffmanCode& code = codec.category_code();
    writer.WriteU32(static_cast<uint32_t>(code.num_symbols()));
    for (int s = 0; s < code.num_symbols(); ++s) {
      writer.WriteU32(static_cast<uint32_t>(code.length(s)));
      writer.WriteU64(code.code(s));
    }
    writer.EndSection();

    writer.BeginSection();
    for (NodeId n = 0; n < index.graph().num_nodes(); ++n) {
      const EncodedRow& row = index.encoded_row(n);
      writer.WriteU32(row.size_bits);
      writer.WriteBytes(row.bytes);
      writer.WriteVectorU32(row.checkpoints);
    }
    writer.EndSection();

    // Object-object table: full matrix, -1 = far pair.
    const ObjectDistanceTable& table = index.object_table();
    const uint32_t d = static_cast<uint32_t>(index.num_objects());
    writer.BeginSection();
    for (uint32_t u = 0; u < d; ++u) {
      for (uint32_t v = 0; v < d; ++v) {
        writer.WriteDouble(table.IsFar(u, v) ? -1.0 : table.Get(u, v));
      }
    }
    writer.EndSection();

    const SignatureSizeStats& stats = index.size_stats();
    writer.BeginSection();
    writer.WriteU64(stats.raw_bits);
    writer.WriteU64(stats.encoded_bits);
    writer.WriteU64(stats.compressed_bits);
    writer.WriteU64(stats.entries);
    writer.WriteU64(stats.compressed_entries);
    writer.EndSection();

    // Optional hub-label tier: one opaque blob in its own CRC section,
    // between the size stats and the footer. Absent sections keep the file
    // byte-identical to the pre-label format, so old files load unchanged
    // (the loader detects presence by the bytes left before the footer).
    // Stale or undecodable labels are not worth persisting — the planner
    // would never route to them.
    const HubLabels* labels = index.hub_labels();
    if (labels != nullptr && !labels->stale() && labels->ready()) {
      writer.BeginSection();
      writer.WriteBytes(labels->Serialize());
      writer.EndSection();
    }

    WriteFooter(writer);
  });
}

StatusOr<std::unique_ptr<SignatureIndex>> LoadSignatureIndex(
    const RoadNetwork& graph, const std::string& path,
    const LoadOptions& options) {
  static obs::Histogram* const load_ms =
      obs::MetricsRegistry::Global().GetHistogram("persist.load_index_ms");
  const obs::ScopedTimer timer(load_ms);
  BinaryReader reader(path);
  reader.InjectFaults(options.faults);
  DSIG_RETURN_IF_ERROR(reader.status());
  DSIG_RETURN_IF_ERROR(
      CheckHeader(reader, path, kIndexMagic, "signature-index"));

  reader.BeginSection();
  const uint64_t fingerprint_nodes = reader.ReadU64();
  const uint64_t fingerprint_slots = reader.ReadU64();
  DSIG_RETURN_IF_ERROR(reader.VerifySection("graph fingerprint"));
  if (fingerprint_nodes != graph.num_nodes() ||
      fingerprint_slots != graph.num_edge_slots()) {
    return Status::FailedPrecondition(
        path + ": index was built for a different network (" +
        std::to_string(fingerprint_nodes) + " nodes / " +
        std::to_string(fingerprint_slots) + " edge slots vs " +
        std::to_string(graph.num_nodes()) + " / " +
        std::to_string(graph.num_edge_slots()) + ")");
  }

  reader.BeginSection();
  const std::vector<uint32_t> raw_objects = reader.ReadVectorU32();
  DSIG_RETURN_IF_ERROR(reader.VerifySection("object"));
  std::vector<NodeId> objects(raw_objects.begin(), raw_objects.end());
  // Out-of-range or duplicate object nodes would corrupt the index's
  // node->object map before any query runs; distinctness also bounds the
  // object count (and thus the d*d table below) by |V|.
  std::vector<char> object_seen(graph.num_nodes(), 0);
  for (const NodeId n : objects) {
    if (n >= graph.num_nodes()) {
      return Corrupt(path, "object list names node " + std::to_string(n) +
                               " outside the network");
    }
    if (object_seen[n]) {
      return Corrupt(path,
                     "object list names node " + std::to_string(n) + " twice");
    }
    object_seen[n] = 1;
  }

  reader.BeginSection();
  std::vector<Weight> boundaries = reader.ReadVectorDouble();
  const double t = reader.ReadDouble();
  const double c = reader.ReadDouble();
  DSIG_RETURN_IF_ERROR(reader.VerifySection("partition"));
  if (boundaries.size() > 255) {
    return Corrupt(path, "partition has " + std::to_string(boundaries.size()) +
                             " boundaries (more than 255 categories)");
  }
  for (size_t i = 0; i < boundaries.size(); ++i) {
    const bool ascending =
        i == 0 ? boundaries[i] > 0 : boundaries[i] > boundaries[i - 1];
    if (!std::isfinite(boundaries[i]) || !ascending) {
      return Corrupt(path,
                     "category boundaries are not finite, positive, and "
                     "strictly ascending");
    }
  }
  if (!std::isfinite(t) || !std::isfinite(c) || t < 0 || c < 0) {
    return Corrupt(path, "partition parameters are not finite and >= 0");
  }
  CategoryPartition partition =
      CategoryPartition::Restore(std::move(boundaries), t, c);

  reader.BeginSection();
  const uint32_t link_bits = reader.ReadU32();
  const uint32_t has_flags = reader.ReadU32();
  const uint32_t num_symbols = reader.ReadU32();
  DSIG_RETURN_IF_ERROR(reader.status());
  if (link_bits > 16) {
    return Corrupt(path, "backtracking-link width " +
                             std::to_string(link_bits) + " exceeds 16 bits");
  }
  if (has_flags > 1) {
    return Corrupt(path, "malformed compression-flag marker");
  }
  if (num_symbols !=
      static_cast<uint32_t>(partition.num_categories())) {
    return Corrupt(path, "category code has " + std::to_string(num_symbols) +
                             " symbols but the partition has " +
                             std::to_string(partition.num_categories()) +
                             " categories");
  }
  if (num_symbols > reader.remaining() / kSymbolRecordBytes) {
    return Corrupt(path, "category-code symbol count exceeds the bytes left "
                         "in the file");
  }
  std::vector<int> lengths(num_symbols);
  std::vector<uint64_t> codes(num_symbols);
  for (uint32_t s = 0; s < num_symbols; ++s) {
    lengths[s] = static_cast<int>(reader.ReadU32());
    codes[s] = reader.ReadU64();
  }
  DSIG_RETURN_IF_ERROR(reader.VerifySection("codec"));
  if (!HuffmanCode::PartsAreValid(lengths, codes)) {
    return Corrupt(path, "category code is not a valid prefix code");
  }
  SignatureCodec codec(
      HuffmanCode::FromParts(std::move(lengths), std::move(codes)),
      static_cast<int>(link_bits), has_flags == 1);

  const size_t d = objects.size();
  const uint64_t expected_checkpoints = (d + 31) / 32;
  reader.BeginSection();
  std::vector<EncodedRow> rows(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    rows[n].size_bits = reader.ReadU32();
    rows[n].bytes = reader.ReadBytes();
    rows[n].checkpoints = reader.ReadVectorU32();
    DSIG_RETURN_IF_ERROR(reader.status());
    if (rows[n].bytes.size() != (rows[n].size_bits + 7) / 8) {
      return Corrupt(path, "row of node " + std::to_string(n) +
                               " has a byte count that disagrees with its "
                               "bit length");
    }
    if (rows[n].checkpoints.size() != expected_checkpoints) {
      return Corrupt(path, "row of node " + std::to_string(n) +
                               " has a malformed checkpoint list");
    }
    for (const uint32_t checkpoint : rows[n].checkpoints) {
      if (checkpoint > rows[n].size_bits) {
        return Corrupt(path, "row of node " + std::to_string(n) +
                                 " has a checkpoint past the end of the row");
      }
    }
  }
  DSIG_RETURN_IF_ERROR(reader.VerifySection("row"));

  reader.BeginSection();
  const uint64_t cells = static_cast<uint64_t>(d) * d;
  if (cells > reader.remaining() / 8) {
    return Corrupt(path,
                   "object-distance table exceeds the bytes left in the file");
  }
  ObjectDistanceTable table(d);
  for (uint32_t u = 0; u < d; ++u) {
    for (uint32_t v = 0; v < d; ++v) {
      const double value = reader.ReadDouble();
      if (value != -1.0 && (!std::isfinite(value) || value < 0)) {
        return Corrupt(path,
                       "object-distance entry is neither the far marker nor "
                       "a finite non-negative distance");
      }
      if (value >= 0 && u < v) table.Set(u, v, value);
    }
    DSIG_RETURN_IF_ERROR(reader.status());
  }
  DSIG_RETURN_IF_ERROR(reader.VerifySection("object table"));

  reader.BeginSection();
  SignatureSizeStats stats;
  stats.raw_bits = reader.ReadU64();
  stats.encoded_bits = reader.ReadU64();
  stats.compressed_bits = reader.ReadU64();
  stats.entries = reader.ReadU64();
  stats.compressed_entries = reader.ReadU64();
  DSIG_RETURN_IF_ERROR(reader.VerifySection("size stats"));

  // Optional hub-label section. The footer is exactly 16 bytes, so anything
  // beyond that here is the label blob; files written before the label tier
  // existed land straight on the footer and load unchanged. The blob is
  // CRC-checked now but *decoded lazily* — the first query that routes
  // through the labels pays the decode, and a blob that then fails its
  // structural checks degrades to "no labels" rather than failing the load.
  std::shared_ptr<HubLabels> labels;
  if (reader.remaining() > 16) {
    reader.BeginSection();
    std::vector<uint8_t> blob = reader.ReadBytes();
    DSIG_RETURN_IF_ERROR(reader.VerifySection("hub labels"));
    labels = HubLabels::FromSerialized(std::move(blob));
  }

  DSIG_RETURN_IF_ERROR(CheckFooter(reader, path));

  auto index = std::make_unique<SignatureIndex>(
      &graph, std::move(objects), std::move(partition), std::move(codec),
      std::move(rows), std::move(table), stats, nullptr);
  index->set_hub_labels(std::move(labels));
  if (options.verify) DSIG_RETURN_IF_ERROR(index->Verify());
  return index;
}

}  // namespace dsig
