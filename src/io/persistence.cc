#include "io/persistence.h"

#include <utility>

#include "io/binary_io.h"

namespace dsig {
namespace {

constexpr uint32_t kNetworkMagic = 0x4e475344;  // "DSGN"
constexpr uint32_t kIndexMagic = 0x49475344;    // "DSGI"
constexpr uint32_t kVersion = 1;

}  // namespace

bool SaveRoadNetwork(const RoadNetwork& graph, const std::string& path) {
  BinaryWriter writer(path);
  if (!writer.ok()) return false;
  writer.WriteU32(kNetworkMagic);
  writer.WriteU32(kVersion);
  writer.WriteU64(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    writer.WriteDouble(graph.position(n).x);
    writer.WriteDouble(graph.position(n).y);
  }
  writer.WriteU64(graph.num_edge_slots());
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    const auto [u, v] = graph.edge_endpoints(e);
    writer.WriteU32(u);
    writer.WriteU32(v);
    writer.WriteDouble(graph.edge_weight(e));
    writer.WriteU32(graph.edge_removed(e) ? 1 : 0);
  }
  return true;
}

std::unique_ptr<RoadNetwork> LoadRoadNetwork(const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return nullptr;
  if (reader.ReadU32() != kNetworkMagic) return nullptr;
  if (reader.ReadU32() != kVersion) return nullptr;
  auto graph = std::make_unique<RoadNetwork>();
  const uint64_t nodes = reader.ReadU64();
  for (uint64_t n = 0; n < nodes; ++n) {
    const double x = reader.ReadDouble();
    const double y = reader.ReadDouble();
    graph->AddNode({x, y});
  }
  // Replaying AddEdge in edge-id order reproduces adjacency slot order
  // exactly — backtracking links depend on it.
  const uint64_t edges = reader.ReadU64();
  for (uint64_t e = 0; e < edges; ++e) {
    const NodeId u = reader.ReadU32();
    const NodeId v = reader.ReadU32();
    const Weight w = reader.ReadDouble();
    const bool removed = reader.ReadU32() != 0;
    const EdgeId id = graph->AddEdge(u, v, w);
    if (removed) graph->RemoveEdge(id);
  }
  return graph;
}

bool SaveSignatureIndex(const SignatureIndex& index, const std::string& path) {
  BinaryWriter writer(path);
  if (!writer.ok()) return false;
  writer.WriteU32(kIndexMagic);
  writer.WriteU32(kVersion);
  // Fingerprint of the graph the index belongs to.
  writer.WriteU64(index.graph().num_nodes());
  writer.WriteU64(index.graph().num_edge_slots());

  writer.WriteVectorU32(index.objects());

  const CategoryPartition& partition = index.partition();
  writer.WriteVectorDouble(partition.boundaries());
  writer.WriteDouble(partition.t());
  writer.WriteDouble(partition.c());

  const SignatureCodec& codec = index.codec();
  writer.WriteU32(static_cast<uint32_t>(codec.link_bits()));
  writer.WriteU32(codec.has_flags() ? 1 : 0);
  const HuffmanCode& code = codec.category_code();
  writer.WriteU32(static_cast<uint32_t>(code.num_symbols()));
  for (int s = 0; s < code.num_symbols(); ++s) {
    writer.WriteU32(static_cast<uint32_t>(code.length(s)));
    writer.WriteU64(code.code(s));
  }

  for (NodeId n = 0; n < index.graph().num_nodes(); ++n) {
    const EncodedRow& row = index.encoded_row(n);
    writer.WriteU32(row.size_bits);
    writer.WriteBytes(row.bytes);
    writer.WriteVectorU32(row.checkpoints);
  }

  // Object-object table: full matrix, infinity = far pair.
  const ObjectDistanceTable& table = index.object_table();
  const uint32_t d = static_cast<uint32_t>(index.num_objects());
  for (uint32_t u = 0; u < d; ++u) {
    for (uint32_t v = 0; v < d; ++v) {
      writer.WriteDouble(table.IsFar(u, v) ? -1.0 : table.Get(u, v));
    }
  }

  const SignatureSizeStats& stats = index.size_stats();
  writer.WriteU64(stats.raw_bits);
  writer.WriteU64(stats.encoded_bits);
  writer.WriteU64(stats.compressed_bits);
  writer.WriteU64(stats.entries);
  writer.WriteU64(stats.compressed_entries);
  return true;
}

std::unique_ptr<SignatureIndex> LoadSignatureIndex(const RoadNetwork& graph,
                                                   const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return nullptr;
  if (reader.ReadU32() != kIndexMagic) return nullptr;
  if (reader.ReadU32() != kVersion) return nullptr;
  if (reader.ReadU64() != graph.num_nodes()) return nullptr;
  if (reader.ReadU64() != graph.num_edge_slots()) return nullptr;

  const std::vector<uint32_t> raw_objects = reader.ReadVectorU32();
  std::vector<NodeId> objects(raw_objects.begin(), raw_objects.end());

  std::vector<Weight> boundaries = reader.ReadVectorDouble();
  const double t = reader.ReadDouble();
  const double c = reader.ReadDouble();
  CategoryPartition partition =
      CategoryPartition::Restore(std::move(boundaries), t, c);

  const int link_bits = static_cast<int>(reader.ReadU32());
  const bool has_flags = reader.ReadU32() != 0;
  const int num_symbols = static_cast<int>(reader.ReadU32());
  std::vector<int> lengths(static_cast<size_t>(num_symbols));
  std::vector<uint64_t> codes(static_cast<size_t>(num_symbols));
  for (int s = 0; s < num_symbols; ++s) {
    lengths[static_cast<size_t>(s)] = static_cast<int>(reader.ReadU32());
    codes[static_cast<size_t>(s)] = reader.ReadU64();
  }
  SignatureCodec codec(
      HuffmanCode::FromParts(std::move(lengths), std::move(codes)), link_bits,
      has_flags);

  std::vector<EncodedRow> rows(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    rows[n].size_bits = reader.ReadU32();
    rows[n].bytes = reader.ReadBytes();
    rows[n].checkpoints = reader.ReadVectorU32();
  }

  ObjectDistanceTable table(objects.size());
  for (uint32_t u = 0; u < objects.size(); ++u) {
    for (uint32_t v = 0; v < objects.size(); ++v) {
      const double value = reader.ReadDouble();
      if (value >= 0 && u < v) table.Set(u, v, value);
    }
  }

  SignatureSizeStats stats;
  stats.raw_bits = reader.ReadU64();
  stats.encoded_bits = reader.ReadU64();
  stats.compressed_bits = reader.ReadU64();
  stats.entries = reader.ReadU64();
  stats.compressed_entries = reader.ReadU64();

  return std::make_unique<SignatureIndex>(
      &graph, std::move(objects), std::move(partition), std::move(codec),
      std::move(rows), std::move(table), stats, nullptr);
}

}  // namespace dsig
