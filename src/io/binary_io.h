// Minimal little-endian binary (de)serialization primitives shared by the
// graph and index persistence code. Not a general-purpose format: each
// persisted structure writes a magic + version header and fixed field order.
//
// Robustness contract: neither side ever aborts on bad input or failed I/O.
// Errors are sticky — the first failure latches into status(), every later
// call becomes a no-op (reads return zeros / empty vectors), and the caller
// checks status() at section boundaries. Length prefixes are validated
// against the bytes actually remaining in the file before any allocation, so
// a corrupt 8-byte length can never trigger a multi-GB allocation.
//
// Integrity: both sides maintain a running CRC-32C. BeginSection() resets it;
// the writer's EndSection() appends the checksum of everything written since,
// and the reader's VerifySection() recomputes and compares. A deterministic
// fault-injection plan (truncate / bit-flip / hard read error at a byte
// offset) can be attached to a reader to exercise corruption handling.
#ifndef DSIG_IO_BINARY_IO_H_
#define DSIG_IO_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/fault_plan.h"
#include "util/status.h"

namespace dsig {

// Buffered binary writer over a file. Errors are sticky; call Close() (or
// check status()) to learn whether everything — including the final flush —
// actually reached the file.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteDouble(double value);
  void WriteBytes(const std::vector<uint8_t>& bytes);

  template <typename T>
  void WriteVectorU32(const std::vector<T>& values) {
    WriteU64(values.size());
    for (const T& v : values) WriteU32(static_cast<uint32_t>(v));
  }

  void WriteVectorDouble(const std::vector<double>& values) {
    WriteU64(values.size());
    for (const double v : values) WriteDouble(v);
  }

  // Section checksums: BeginSection() resets the running CRC-32C,
  // EndSection() appends it as a U32.
  void BeginSection() { section_crc_ = 0; }
  void EndSection();

  uint64_t bytes_written() const { return bytes_written_; }

  // Flushes and closes, surfacing fflush/fclose failures (a buffered write
  // to a full disk often only fails here). Idempotent; returns the sticky
  // status. The destructor closes best-effort without reporting.
  Status Close();

  // Makes writes reaching plan.fail_at fail with an I/O error (tests).
  void InjectFaults(const WriteFaultPlan& plan) { fault_plan_ = plan; }

 private:
  void WriteRaw(const void* data, size_t bytes);

  std::FILE* file_ = nullptr;
  Status status_;
  uint32_t section_crc_ = 0;
  uint64_t bytes_written_ = 0;
  WriteFaultPlan fault_plan_;
};

// Binary reader mirroring BinaryWriter. Corrupt or truncated input latches a
// kCorruption status; reads past the first error return zeros.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadDouble();
  std::vector<uint8_t> ReadBytes();

  std::vector<uint32_t> ReadVectorU32();
  std::vector<double> ReadVectorDouble();

  // Bytes between the read position and the (possibly fault-truncated) end.
  uint64_t remaining() const {
    return position_ >= effective_size_ ? 0 : effective_size_ - position_;
  }
  uint64_t position() const { return position_; }
  uint64_t file_size() const { return file_size_; }
  bool AtEnd() const { return remaining() == 0; }

  // Mirrors the writer's section checksums. VerifySection() consumes the
  // stored U32 and compares it with the CRC-32C of the bytes read since
  // BeginSection(); mismatch latches and returns kCorruption.
  void BeginSection() { section_crc_ = 0; }
  Status VerifySection(const char* section_name);

  // Applies deterministic faults beneath the checksum layer (tests).
  void InjectFaults(const ReadFaultPlan& plan);

 private:
  void ReadRaw(void* data, size_t bytes);
  void Fail(Status status);

  std::FILE* file_ = nullptr;
  Status status_;
  uint32_t section_crc_ = 0;
  uint64_t position_ = 0;
  uint64_t file_size_ = 0;
  uint64_t effective_size_ = 0;  // min(file_size_, fault truncation)
  ReadFaultPlan fault_plan_;
};

}  // namespace dsig

#endif  // DSIG_IO_BINARY_IO_H_
