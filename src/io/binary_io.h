// Minimal little-endian binary (de)serialization primitives shared by the
// graph and index persistence code. Not a general-purpose format: each
// persisted structure writes a magic + version header and fixed field order.
#ifndef DSIG_IO_BINARY_IO_H_
#define DSIG_IO_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/logging.h"

namespace dsig {

// Buffered binary writer over a file. All Write* calls abort on I/O errors
// (persistence failures are not recoverable mid-stream).
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteDouble(double value);
  void WriteBytes(const std::vector<uint8_t>& bytes);

  template <typename T>
  void WriteVectorU32(const std::vector<T>& values) {
    WriteU64(values.size());
    for (const T& v : values) WriteU32(static_cast<uint32_t>(v));
  }

  void WriteVectorDouble(const std::vector<double>& values) {
    WriteU64(values.size());
    for (const double v : values) WriteDouble(v);
  }

 private:
  void WriteRaw(const void* data, size_t bytes);

  std::FILE* file_ = nullptr;
};

// Binary reader mirroring BinaryWriter. Read failures (truncated / corrupt
// files) are fatal after the header has validated; header validation itself
// is the caller's recoverable check.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  bool ok() const { return file_ != nullptr; }

  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadDouble();
  std::vector<uint8_t> ReadBytes();

  std::vector<uint32_t> ReadVectorU32();
  std::vector<double> ReadVectorDouble();

 private:
  void ReadRaw(void* data, size_t bytes);

  std::FILE* file_ = nullptr;
};

}  // namespace dsig

#endif  // DSIG_IO_BINARY_IO_H_
