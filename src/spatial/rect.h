// Axis-aligned rectangles for the R-tree.
#ifndef DSIG_SPATIAL_RECT_H_
#define DSIG_SPATIAL_RECT_H_

#include <algorithm>
#include <limits>

#include "graph/road_network.h"

namespace dsig {

struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static Rect FromPoint(const Point& p) { return {p.x, p.y, p.x, p.y}; }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  void ExpandToInclude(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void ExpandToInclude(const Rect& r) {
    min_x = std::min(min_x, r.min_x);
    min_y = std::min(min_y, r.min_y);
    max_x = std::max(max_x, r.max_x);
    max_y = std::max(max_y, r.max_y);
  }

  double Area() const {
    if (IsEmpty()) return 0;
    return (max_x - min_x) * (max_y - min_y);
  }

  bool Intersects(const Rect& r) const {
    return !(r.min_x > max_x || r.max_x < min_x || r.min_y > max_y ||
             r.max_y < min_y);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  // Area growth needed to absorb `r`; the quadratic-split / ChooseLeaf
  // criterion.
  double Enlargement(const Rect& r) const {
    Rect merged = *this;
    merged.ExpandToInclude(r);
    return merged.Area() - Area();
  }
};

inline bool operator==(const Rect& a, const Rect& b) {
  return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
         a.max_y == b.max_y;
}

}  // namespace dsig

#endif  // DSIG_SPATIAL_RECT_H_
