#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dsig {

RTree::RTree(int max_entries) : max_entries_(max_entries) {
  DSIG_CHECK_GE(max_entries_, 4);
  nodes_.push_back(Node{});  // empty leaf root
}

Rect RTree::NodeRect(uint32_t node) const {
  Rect r;
  for (const Entry& e : nodes_[node].entries) r.ExpandToInclude(e.rect);
  return r;
}

uint32_t RTree::ChooseLeaf(const Rect& rect,
                           std::vector<uint32_t>* path) const {
  uint32_t node = root_;
  while (!nodes_[node].is_leaf) {
    path->push_back(node);
    const std::vector<Entry>& entries = nodes_[node].entries;
    DSIG_CHECK(!entries.empty());
    uint32_t best = 0;
    double best_enlargement = entries[0].rect.Enlargement(rect);
    double best_area = entries[0].rect.Area();
    for (uint32_t i = 1; i < entries.size(); ++i) {
      const double enlargement = entries[i].rect.Enlargement(rect);
      const double area = entries[i].rect.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = entries[best].child_or_value;
  }
  return node;
}

uint32_t RTree::SplitNode(uint32_t node) {
  std::vector<Entry> entries = std::move(nodes_[node].entries);
  nodes_[node].entries.clear();
  const uint32_t twin = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{nodes_[node].is_leaf, {}});

  // Quadratic seed pick: the pair wasting the most area together.
  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -1;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      Rect merged = entries[i].rect;
      merged.ExpandToInclude(entries[j].rect);
      const double waste =
          merged.Area() - entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<bool> assigned(entries.size(), false);
  nodes_[node].entries.push_back(entries[seed_a]);
  nodes_[twin].entries.push_back(entries[seed_b]);
  assigned[seed_a] = assigned[seed_b] = true;
  Rect rect_a = entries[seed_a].rect;
  Rect rect_b = entries[seed_b].rect;

  const size_t min_fill = static_cast<size_t>(max_entries_) / 2;
  size_t remaining = entries.size() - 2;
  while (remaining > 0) {
    // Force-assign when one group must take everything left to reach fill.
    if (nodes_[node].entries.size() + remaining <= min_fill) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          nodes_[node].entries.push_back(entries[i]);
          rect_a.ExpandToInclude(entries[i].rect);
          assigned[i] = true;
        }
      }
      break;
    }
    if (nodes_[twin].entries.size() + remaining <= min_fill) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          nodes_[twin].entries.push_back(entries[i]);
          rect_b.ExpandToInclude(entries[i].rect);
          assigned[i] = true;
        }
      }
      break;
    }
    // PickNext: the entry with the strongest preference between the groups.
    size_t best = entries.size();
    double best_diff = -1;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      const double diff = std::abs(rect_a.Enlargement(entries[i].rect) -
                                   rect_b.Enlargement(entries[i].rect));
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    DSIG_CHECK_LT(best, entries.size());
    const double grow_a = rect_a.Enlargement(entries[best].rect);
    const double grow_b = rect_b.Enlargement(entries[best].rect);
    const bool to_a =
        grow_a < grow_b ||
        (grow_a == grow_b &&
         nodes_[node].entries.size() <= nodes_[twin].entries.size());
    if (to_a) {
      nodes_[node].entries.push_back(entries[best]);
      rect_a.ExpandToInclude(entries[best].rect);
    } else {
      nodes_[twin].entries.push_back(entries[best]);
      rect_b.ExpandToInclude(entries[best].rect);
    }
    assigned[best] = true;
    --remaining;
  }
  return twin;
}

void RTree::AdjustTree(std::vector<uint32_t>& path, uint32_t split_node) {
  uint32_t new_node = split_node;
  while (!path.empty()) {
    const uint32_t parent = path.back();
    path.pop_back();
    // Refresh all child rects on the way up (cheap at these fanouts).
    for (Entry& e : nodes_[parent].entries) {
      e.rect = NodeRect(e.child_or_value);
    }
    if (new_node != 0) {
      nodes_[parent].entries.push_back({NodeRect(new_node), new_node});
      new_node = 0;
      if (nodes_[parent].entries.size() >
          static_cast<size_t>(max_entries_)) {
        new_node = SplitNode(parent);
      }
    }
  }
  if (new_node != 0) {
    // Root split: grow the tree by one level.
    const uint32_t new_root = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{false, {}});
    nodes_[new_root].entries.push_back({NodeRect(root_), root_});
    nodes_[new_root].entries.push_back({NodeRect(new_node), new_node});
    root_ = new_root;
  }
}

void RTree::Insert(const Rect& rect, uint32_t value) {
  DSIG_CHECK(!rect.IsEmpty());
  std::vector<uint32_t> path;
  const uint32_t leaf = ChooseLeaf(rect, &path);
  nodes_[leaf].entries.push_back({rect, value});
  ++size_;
  uint32_t split = 0;
  if (nodes_[leaf].entries.size() > static_cast<size_t>(max_entries_)) {
    split = SplitNode(leaf);
  }
  AdjustTree(path, split);
}

RTreeSearchResult RTree::Search(const Rect& query) const {
  RTreeSearchResult result;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const uint32_t node = stack.back();
    stack.pop_back();
    ++result.nodes_visited;
    result.visited_nodes.push_back(node);
    for (const Entry& e : nodes_[node].entries) {
      if (!e.rect.Intersects(query)) continue;
      if (nodes_[node].is_leaf) {
        result.values.push_back(e.child_or_value);
      } else {
        stack.push_back(e.child_or_value);
      }
    }
  }
  return result;
}

RTreeSearchResult RTree::Locate(const Point& p) const {
  RTreeSearchResult result;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const uint32_t node = stack.back();
    stack.pop_back();
    ++result.nodes_visited;
    result.visited_nodes.push_back(node);
    for (const Entry& e : nodes_[node].entries) {
      if (!e.rect.Contains(p)) continue;
      if (nodes_[node].is_leaf) {
        result.values.push_back(e.child_or_value);
      } else {
        stack.push_back(e.child_or_value);
      }
    }
  }
  return result;
}

int RTree::height() const {
  int h = 1;
  uint32_t node = root_;
  while (!nodes_[node].is_leaf) {
    DSIG_CHECK(!nodes_[node].entries.empty());
    node = nodes_[node].entries[0].child_or_value;
    ++h;
  }
  return h;
}

uint64_t RTree::SizeBytes() const {
  // 4 doubles + 4-byte pointer/value per slot, full fanout allocation.
  const uint64_t per_node =
      static_cast<uint64_t>(max_entries_) * (4 * sizeof(double) + 4);
  return per_node * nodes_.size();
}

}  // namespace dsig
