// R-tree with quadratic split (Guttman, 1984).
//
// Substrate for the NVD baseline: the VN³ algorithm (paper §2, Kolahdouzan &
// Shahabi) indexes Network Voronoi Polygons with an R-tree and reduces
// first-NN search to point location. Search results report how many tree
// nodes were visited so benches can charge one page per node, and SizeBytes()
// feeds the index-size comparison (Fig 6.4a).
#ifndef DSIG_SPATIAL_RTREE_H_
#define DSIG_SPATIAL_RTREE_H_

#include <cstdint>
#include <vector>

#include "spatial/rect.h"

namespace dsig {

struct RTreeSearchResult {
  std::vector<uint32_t> values;
  size_t nodes_visited = 0;  // tree nodes touched, charged as pages
  // Indexes of the tree nodes touched, so callers can charge one page per
  // node to a buffer pool.
  std::vector<uint32_t> visited_nodes;
};

class RTree {
 public:
  // `max_entries` = fanout M; minimum fill is M/2.
  explicit RTree(int max_entries = 16);

  void Insert(const Rect& rect, uint32_t value);

  // All values whose rectangle intersects `query`.
  RTreeSearchResult Search(const Rect& query) const;

  // All values whose rectangle contains `p` (point location; NVP lookup).
  RTreeSearchResult Locate(const Point& p) const;

  size_t size() const { return size_; }
  size_t num_tree_nodes() const { return nodes_.size(); }
  int height() const;

  // Approximate on-disk size: every tree node costs one entry array
  // (rect + child pointer per slot).
  uint64_t SizeBytes() const;

 private:
  struct Entry {
    Rect rect;
    // Child node index for internal nodes; user value for leaves.
    uint32_t child_or_value = 0;
  };
  struct Node {
    bool is_leaf = true;
    std::vector<Entry> entries;
  };

  Rect NodeRect(uint32_t node) const;
  // Descends to the leaf whose enlargement is minimal, recording the path.
  uint32_t ChooseLeaf(const Rect& rect, std::vector<uint32_t>* path) const;
  // Splits `node` (quadratic seeds) and returns the new node's index.
  uint32_t SplitNode(uint32_t node);
  void AdjustTree(std::vector<uint32_t>& path, uint32_t split_node);

  int max_entries_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t size_ = 0;
};

}  // namespace dsig

#endif  // DSIG_SPATIAL_RTREE_H_
